#include "ucx/worker.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

#include "base/crc32.hpp"
#include "base/flight_recorder.hpp"
#include "base/log.hpp"
#include "base/metrics.hpp"
#include "base/trace.hpp"

namespace mpicd::ucx {

namespace {

// Always-on distribution metrics (one relaxed fetch_add per record; see
// base/hist.hpp). Looked up once — the registry lookup takes a lock.
Histogram& msg_latency_hist() {
    static Histogram& h = metrics().histogram("msg", "latency_ns");
    return h;
}
Histogram& retransmits_hist() {
    static Histogram& h = metrics().histogram("msg", "retransmits");
    return h;
}
Histogram& frag_bytes_hist() {
    static Histogram& h = metrics().histogram("wire", "frag_bytes");
    return h;
}
Histogram& pack_mbps_hist() {
    static Histogram& h = metrics().histogram("pack", "throughput_mbps");
    return h;
}
// How long unexpected messages sat parked before a matching receive
// arrived (virtual ns); a direct read on receive-side posting discipline.
Histogram& unexpected_dwell_hist() {
    static Histogram& h = metrics().histogram("match", "unexpected_dwell_ns");
    return h;
}

// Record the throughput of one measured pack callback. Sub-0.05us samples
// are noise (timer granularity), not throughput.
void record_pack_throughput(Count bytes, SimTime host_us) {
    if (host_us < 0.05 || bytes <= 0) return;
    pack_mbps_hist().record(
        static_cast<std::uint64_t>(static_cast<double>(bytes) / host_us));
}

// Packet kinds on the simulated wire (public: ucx/wire.hpp).
using wire::kAck;
using wire::kCts;
using wire::kEager;
using wire::kFin;
using wire::kFrag;
using wire::kRts;

enum class CtsMode : std::uint32_t { rdma = 1, pipeline = 2, abort = 3 };

struct EagerHeader {
    Tag tag;
    Count total;
};

struct RtsHeader {
    Tag tag;
    std::uint64_t sender_op;
    Count total;
};

struct CtsHeader {
    std::uint64_t sender_op;
    std::uint64_t recv_op;
    CtsMode mode;
    std::uint32_t nregions;
};

struct FinHeader {
    std::uint64_t recv_op;
    double data_vtime;
    Count total;
    std::int32_t status;
};

struct FragHeader {
    std::uint64_t recv_op;
    Count offset;
    Count msg_total;
    std::uint32_t last;
};

struct AckHeader {
    std::uint64_t acked_seq; // link_seq of the packet being acknowledged
};

// CRC-32 over kind + link_seq + header + payload. The fabric's fault layer
// can flip header/payload bits; any single-bit (in fact any <=32-bit burst)
// change is guaranteed to alter this value.
[[nodiscard]] std::uint32_t packet_crc(const netsim::Packet& pkt) {
    // Padding-free identity prefix (a struct would CRC indeterminate
    // padding bytes and break sender/receiver agreement).
    const std::uint64_t id[2] = {pkt.kind, pkt.link_seq};
    std::uint32_t c = crc32(id, sizeof(id));
    c = crc32(pkt.header.data(), pkt.header.size(), c);
    c = crc32(pkt.payload.data(), pkt.payload.size(), c);
    return c;
}

template <typename H>
ByteVec encode_header(const H& h) {
    ByteVec out(sizeof(H));
    std::memcpy(out.data(), &h, sizeof(H));
    return out;
}

template <typename H>
H decode_header(const ByteVec& bytes) {
    assert(bytes.size() >= sizeof(H));
    H h;
    std::memcpy(&h, bytes.data(), sizeof(H));
    return h;
}

} // namespace

// ---------------------------------------------------------------------------
// Internal request / unexpected-message state

struct Worker::Request {
    enum class Kind { send, recv };
    Kind kind = Kind::recv;
    RequestId id = kInvalidRequest;
    Tag tag = 0;
    Tag mask = ~Tag{0};
    int peer = -1;
    BufferDesc desc;
    std::optional<SendSource> source; // send side
    std::optional<RecvSink> sink;     // recv side, built at match time
    Count expected_total = 0;         // rndv recv: bytes announced in RTS
    Count bytes_received = 0;
    std::uint64_t op_id = 0; // rendezvous protocol id
    bool done = false;
    Completion comp;

    // Message-causal observability (see base/trace.hpp): the process-
    // unique message id, the virtual post time at the *sender* (adopted
    // from the wire on the receive side; < 0 until known), and how many
    // retransmits this operation's packets needed.
    std::uint64_t msg_id = 0;
    SimTime post_vtime = -1.0;
    std::uint64_t retransmits = 0;

    // Reliable-delivery bookkeeping (unused when the protocol is off).
    int unacked = 0;            // outgoing packets not yet acknowledged
    bool finish_on_ack = false; // complete with fin_* once unacked hits 0
    Status fin_status = Status::success;
    Count fin_len = 0;
    SimTime op_deadline = 0.0;  // recv-side rendezvous watchdog (0 = none)
    // Fragments that arrived past a gap while the sink requires in-order
    // unpacking (only possible under the reliable protocol), sorted by
    // offset. A handful of entries at most (one per dropped fragment in
    // flight), so a sorted vector of pooled buffers beats a node-based
    // map; the buffers keep referencing the packet slabs — no staging
    // copy.
    std::vector<std::pair<Count, PooledBuf>> frag_stash;
};

Worker::Worker(netsim::Fabric& fabric, int endpoint)
    : fabric_(fabric), params_(fabric.params()), ep_(endpoint),
      shards_(static_cast<std::size_t>(fabric.size())) {
    // Dump source for the post-mortem flight recorder. The callback is
    // invoked by *other* triggers, so it must try_lock: if this worker is
    // busy (or is itself mid-trigger) its state is reported as busy rather
    // than deadlocking.
    char name[32];
    std::snprintf(name, sizeof(name), "ucx.worker%d", ep_);
    flight_token_ = flight::register_source(name, [this](std::FILE* out) {
        const std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
        if (!lock.owns_lock()) {
            std::fprintf(out, "<busy: worker mutex held>\n");
            return;
        }
        dump_state_locked(out);
    });
}

Worker::~Worker() {
    flight::unregister_source(flight_token_);
    // Fold this worker's protocol counters into the process-wide registry
    // so metrics snapshots (and the BENCH_*.json artifacts) aggregate every
    // worker that ever lived, not just the ones still alive at dump time.
    MetricsRegistry& m = metrics();
    WorkerStats s = stats_;
    s.duplicates_suppressed += adm_dups_.load(std::memory_order_relaxed);
    s.corruption_detected += adm_corruption_.load(std::memory_order_relaxed);
    s.acks_sent += adm_acks_sent_.load(std::memory_order_relaxed);
    m.add("worker", "eager_sends", s.eager_sends);
    m.add("worker", "rndv_sends", s.rndv_sends);
    m.add("worker", "rndv_rdma", s.rndv_rdma);
    m.add("worker", "rndv_pipeline", s.rndv_pipeline);
    m.add("worker", "bytes_sent", s.bytes_sent);
    m.add("worker", "bytes_received", s.bytes_received);
    m.add("worker", "unexpected_msgs", s.unexpected_msgs);
    m.add("worker", "recv_completions", s.recv_completions);
    m.add("worker", "retransmits", s.retransmits);
    m.add("worker", "duplicates_suppressed", s.duplicates_suppressed);
    m.add("worker", "corruption_detected", s.corruption_detected);
    m.add("worker", "acks_sent", s.acks_sent);
    m.add("worker", "acks_received", s.acks_received);
    m.add("worker", "timeouts", s.timeouts);
}

SimTime Worker::now() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return clock_.now();
}

void Worker::advance_time(SimTime dt) {
    const std::lock_guard<std::mutex> lock(mutex_);
    clock_.advance(dt);
}

RequestId Worker::alloc_request_locked() { return next_id_++; }

void Worker::complete_locked(Request& rq, Status st, Count len, Tag sender_tag) {
    if (rq.kind == Request::Kind::recv) {
        ++stats_.recv_completions;
        stats_.bytes_received += static_cast<std::uint64_t>(len);
        // Denominator of the copy-amplification ratio (see base/pool.hpp).
        if (ok(st)) datapath::add_delivered(len);
    }
    rq.done = true;
    rq.comp.status = st;
    rq.comp.received_len = len;
    rq.comp.sender_tag = sender_tag;
    rq.comp.vtime = clock_.now();
    rq.comp.msg_id = rq.msg_id;
    {
        // Publish to the completion registry so is_complete()/
        // take_completion() never need the protocol mutex. Lock order is
        // always mutex_ -> comp_mutex_, never the reverse.
        const std::lock_guard<std::mutex> ck(comp_mutex_);
        completed_[rq.id] = rq.comp;
    }
    // Completion may fire from ack/timer context where no scope is open;
    // the explicit scope pins the event to the right message either way.
    const trace::MsgScope msg_scope(rq.msg_id);
    trace::instant("ucx", rq.kind == Request::Kind::recv ? "recv_complete"
                                                         : "send_complete",
                   rq.comp.vtime, "bytes", static_cast<std::uint64_t>(len),
                   "status", static_cast<std::uint64_t>(st));
    if (rq.kind == Request::Kind::recv && ok(st) && rq.post_vtime >= 0.0 &&
        rq.comp.vtime >= rq.post_vtime) {
        // End-to-end message latency, sender post to receiver completion,
        // in virtual nanoseconds.
        msg_latency_hist().record(static_cast<std::uint64_t>(
            (rq.comp.vtime - rq.post_vtime) * 1000.0));
    }
    if (rq.kind == Request::Kind::send) {
        // Distribution of retransmits per message — zeros included, so the
        // high percentiles read directly as "how bad is the lossy tail".
        retransmits_hist().record(rq.retransmits);
    }
    // Free datatype state eagerly so user callbacks see deterministic
    // lifetime (the paper frees the state object on operation completion).
    rq.source.reset();
    rq.sink.reset();
}

// ---------------------------------------------------------------------------
// Reliable-delivery sublayer
//
// Active only when the fabric's fault injector is active (or MPICD_RELIABLE
// forces it); otherwise every hook below reduces to the lossless seed
// behaviour, byte-for-byte. See docs/FAULTS.md for the state machine.

void Worker::refresh_reliable_locked() {
    // Latch: reliability can switch on (fault schedule installed after
    // construction) but never off mid-run, so both peers stay in protocol.
    if (!reliable_ && fabric_.reliable()) reliable_ = true;
}

void Worker::send_packet_locked(netsim::Packet&& pkt, SimTime ready,
                                Count wire_bytes, Count sg_entries, int rail,
                                bool control, Request* owner) {
    refresh_reliable_locked();
    if (!reliable_) {
        if (control) {
            fabric_.transmit_control(std::move(pkt), ready);
        } else {
            fabric_.transmit(std::move(pkt), ready, wire_bytes, sg_entries, rail);
        }
        return;
    }
    pkt.link_seq = next_link_seq_++;
    pkt.needs_ack = true;
    pkt.crc = packet_crc(pkt);
    PendingTx ptx;
    // Retransmit record: the header is small and copied; the payload is a
    // PooledBuf, so with the pool on this shares the transmitted slab
    // (the fabric detaches via ensure_unique() before corrupting bytes).
    ptx.pkt = pkt;
    ptx.control = control;
    ptx.wire_bytes = wire_bytes;
    ptx.sg_entries = sg_entries;
    ptx.rail = rail;
    ptx.rto = params_.rto_us;
    if (owner != nullptr) {
        ptx.owner = owner->id;
        ++owner->unacked;
    }
    const std::uint64_t seq = pkt.link_seq;
    const SimTime arrival =
        control ? fabric_.transmit_control(std::move(pkt), ready)
                : fabric_.transmit(std::move(pkt), ready, wire_bytes, sg_entries,
                                   rail);
    // Time the first retransmit from the expected ack arrival (the packet's
    // own arrival includes link queueing) rather than from the send, so
    // back-to-back fragment bursts do not trigger spurious retransmits.
    ptx.next_retry = arrival + params_.latency_us + ptx.rto;
    pending_tx_.emplace(seq, std::move(ptx));
}

bool Worker::admit_data_packet(netsim::Packet& pkt) {
    if (pkt.link_seq == 0) return true; // unnumbered: reliability off
    // Admission context holds no lock but the per-peer shard's: CRC
    // verification (the expensive part — it walks the whole payload) and
    // duplicate suppression must not stall senders/completion-checkers
    // waiting on the protocol mutex. Virtual timestamps come from the
    // packet's own arrival time, the value the clock would observe anyway.
    const trace::MsgScope msg_scope(pkt.msg_id);
    if (packet_crc(pkt) != pkt.crc) {
        // Corrupted in flight: discard without ack; the sender retransmits.
        adm_corruption_.fetch_add(1, std::memory_order_relaxed);
        trace::instant("ucx", "crc_drop", pkt.arrival, "seq", pkt.link_seq);
        if (flight::enabled()) {
            flight::trigger("crc_failure", pkt.msg_id, pkt.arrival,
                            flight_token_, [this](std::FILE* out) {
                                const std::unique_lock<std::mutex> lock(
                                    mutex_, std::try_to_lock);
                                if (!lock.owns_lock()) {
                                    std::fprintf(out,
                                                 "<busy: worker mutex held>\n");
                                    return;
                                }
                                dump_state_locked(out);
                            });
        }
        return false;
    }
    PeerShard& shard =
        shards_[static_cast<std::size_t>(pkt.src) % shards_.size()];
    bool dup = false;
    {
        const std::lock_guard<std::mutex> sk(shard.mu);
        dup = !shard.seen.insert(pkt.link_seq).second;
    }
    if (dup) {
        // Duplicate (fault-injected, or a retransmit whose original ack was
        // lost): suppress, but re-ack so the sender stops retrying.
        adm_dups_.fetch_add(1, std::memory_order_relaxed);
        trace::instant("ucx", "dup_drop", pkt.arrival, "seq", pkt.link_seq);
        send_dup_ack(pkt);
        return false;
    }
    return true;
}

void Worker::send_ack_locked(const netsim::Packet& pkt) {
    netsim::Packet ack;
    ack.src = ep_;
    ack.dst = pkt.src;
    ack.kind = kAck;
    ack.header = encode_header(AckHeader{pkt.link_seq});
    ack.msg_id = pkt.msg_id; // attribute the ack to the message it serves
    ack.crc = packet_crc(ack); // acks are CRC'd too, but never acked
    ++stats_.acks_sent;
    trace::instant("ucx", "ack_send", clock_.now(), "seq", pkt.link_seq);
    fabric_.transmit_control(std::move(ack), clock_.now());
}

void Worker::send_dup_ack(const netsim::Packet& pkt) {
    // Admission context: no protocol lock, so the ack is timed off the
    // duplicate's arrival (the instant the receiver saw it) instead of the
    // clock, which is not readable here.
    netsim::Packet ack;
    ack.src = ep_;
    ack.dst = pkt.src;
    ack.kind = kAck;
    ack.header = encode_header(AckHeader{pkt.link_seq});
    ack.msg_id = pkt.msg_id;
    ack.crc = packet_crc(ack);
    adm_acks_sent_.fetch_add(1, std::memory_order_relaxed);
    trace::instant("ucx", "ack_send", pkt.arrival, "seq", pkt.link_seq);
    fabric_.transmit_control(std::move(ack), pkt.arrival);
}

void Worker::handle_ack_locked(const netsim::Packet& pkt) {
    clock_.observe(pkt.arrival);
    if (packet_crc(pkt) != pkt.crc) {
        // A corrupted ack is dropped; the data retransmit will be re-acked.
        ++stats_.corruption_detected;
        return;
    }
    const auto h = decode_header<AckHeader>(pkt.header);
    const auto it = pending_tx_.find(h.acked_seq);
    if (it == pending_tx_.end()) return; // stale or duplicate ack
    ++stats_.acks_received;
    trace::instant("ucx", "ack_recv", clock_.now(), "seq", h.acked_seq);
    const RequestId owner = it->second.owner;
    pending_tx_.erase(it);
    if (owner == kInvalidRequest) return;
    const auto rit = requests_.find(owner);
    if (rit == requests_.end() || rit->second->done) return;
    Request& rq = *rit->second;
    if (rq.unacked > 0) --rq.unacked;
    if (rq.finish_on_ack && rq.unacked == 0)
        complete_locked(rq, rq.fin_status, rq.fin_len, 0);
}

void Worker::fail_request_locked(RequestId id, Status st) {
    if (id == kInvalidRequest) return;
    const auto it = requests_.find(id);
    if (it == requests_.end() || it->second->done) return;
    Request& rq = *it->second;
    // Release every piece of protocol state that still references the
    // request so nothing dangles and idle() converges.
    if (rq.op_id != 0) {
        rndv_sends_.erase(rq.op_id);
        rndv_recvs_.erase(rq.op_id);
    }
    if (rq.kind == Request::Kind::recv)
        matcher_.cancel_posted(id, rq.tag, rq.mask);
    for (auto p = pending_tx_.begin(); p != pending_tx_.end();) {
        p = (p->second.owner == id) ? pending_tx_.erase(p) : std::next(p);
    }
    complete_locked(rq, st, rq.bytes_received, rq.comp.sender_tag);
}

bool Worker::fire_timers_locked() {
    if (pending_tx_.empty() && rndv_recvs_.empty()) return false;
    bool fired = false;
    const SimTime now = clock_.now();
    // Collect first: failing a request sweeps pending_tx_, which would
    // invalidate iterators of a live loop.
    std::vector<std::uint64_t> due, exhausted;
    for (const auto& [seq, ptx] : pending_tx_) {
        if (ptx.next_retry > now) continue;
        (ptx.retries >= params_.max_retries ? exhausted : due).push_back(seq);
    }
    for (const std::uint64_t seq : due) {
        auto& ptx = pending_tx_.at(seq);
        ++ptx.retries;
        ++stats_.retransmits;
        // Timer context has no open scope: attribute the retransmit (and
        // the per-request counter feeding the retransmits histogram) via
        // the stored packet's message id.
        const trace::MsgScope msg_scope(ptx.pkt.msg_id);
        trace::instant("ucx", "retransmit", now, "seq", seq, "retry",
                       static_cast<std::uint64_t>(ptx.retries));
        if (ptx.owner != kInvalidRequest) {
            const auto rit = requests_.find(ptx.owner);
            if (rit != requests_.end()) ++rit->second->retransmits;
        }
        ptx.rto *= 2.0; // exponential backoff in virtual time
        netsim::Packet copy = ptx.pkt;
        const SimTime arrival =
            ptx.control ? fabric_.transmit_control(std::move(copy), now)
                        : fabric_.transmit(std::move(copy), now, ptx.wire_bytes,
                                           ptx.sg_entries, ptx.rail);
        ptx.next_retry = arrival + params_.latency_us + ptx.rto;
        fired = true;
    }
    for (const std::uint64_t seq : exhausted) {
        const auto it = pending_tx_.find(seq);
        if (it == pending_tx_.end()) continue; // removed by an earlier failure
        const RequestId owner = it->second.owner;
        const std::uint64_t msg = it->second.pkt.msg_id;
        pending_tx_.erase(it);
        ++stats_.timeouts;
        const trace::MsgScope msg_scope(msg);
        trace::instant("ucx", "timeout", now, "seq", seq);
        if (flight::enabled()) {
            flight::trigger("retries_exhausted", msg, now, flight_token_,
                            [this](std::FILE* out) { dump_state_locked(out); });
        }
        fail_request_locked(owner, Status::timeout);
        fired = true;
    }
    // Receiver-side rendezvous watchdog: an in-flight operation whose peer
    // went silent past the whole retransmit envelope fails instead of
    // hanging the progress loop forever.
    if (!rndv_recvs_.empty()) {
        std::vector<RequestId> expired;
        for (const auto& [op, rid] : rndv_recvs_) {
            const auto rit = requests_.find(rid);
            if (rit == requests_.end() || rit->second->done) continue;
            const Request& rq = *rit->second;
            if (rq.op_deadline > 0.0 && rq.op_deadline <= now)
                expired.push_back(rid);
        }
        for (const RequestId rid : expired) {
            ++stats_.timeouts;
            if (flight::enabled()) {
                const auto rit = requests_.find(rid);
                const std::uint64_t msg =
                    rit != requests_.end() ? rit->second->msg_id : 0;
                flight::trigger("recv_watchdog_expired", msg, now,
                                flight_token_, [this](std::FILE* out) {
                                    dump_state_locked(out);
                                });
            }
            fail_request_locked(rid, Status::timeout);
            fired = true;
        }
    }
    return fired;
}

SimTime Worker::next_timer_locked() const {
    SimTime t = std::numeric_limits<SimTime>::infinity();
    for (const auto& [seq, ptx] : pending_tx_) t = std::min(t, ptx.next_retry);
    for (const auto& [op, rid] : rndv_recvs_) {
        const auto rit = requests_.find(rid);
        if (rit == requests_.end() || rit->second->done) continue;
        if (rit->second->op_deadline > 0.0)
            t = std::min(t, rit->second->op_deadline);
    }
    return t;
}

SimTime Worker::next_timer() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return next_timer_locked();
}

void Worker::observe_time(SimTime t) {
    const std::lock_guard<std::mutex> lock(mutex_);
    clock_.observe(t);
}

// ---------------------------------------------------------------------------
// Send path

RequestId Worker::tag_send(int dst, Tag tag, BufferDesc desc) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const RequestId id = alloc_request_locked();
    auto rq = std::make_unique<Request>();
    rq->kind = Request::Kind::send;
    rq->id = id;
    rq->tag = tag;
    rq->peer = dst;
    rq->desc = std::move(desc);
    // Adopt the caller's message scope when one is open (the p2p layer
    // opens it before custom-type lowering so the pack/lowering events and
    // the wire share one id); direct worker users get a fresh id here.
    rq->msg_id = trace::current_msg();
    if (rq->msg_id == 0) rq->msg_id = trace::next_msg_id();
    rq->post_vtime = clock_.now();
    requests_.emplace(id, std::move(rq));
    Request& req = *requests_.at(id);
    const trace::MsgScope msg_scope(req.msg_id);
    trace::instant("ucx", "send_post", req.post_vtime, "dst",
                   static_cast<std::uint64_t>(dst), "tag", tag);
    start_send_locked(req);
    return id;
}

void Worker::start_send_locked(Request& rq) {
    rq.source.emplace(rq.desc);
    if (!ok(rq.source->init_error())) {
        complete_locked(rq, rq.source->init_error(), 0, 0);
        return;
    }

    Count total = 0;
    SimTime query_cost = 0.0;
    const Status st = rq.source->total_bytes(&total, query_cost);
    clock_.advance(query_cost);
    if (!ok(st)) {
        complete_locked(rq, st, 0, 0);
        return;
    }

    // IOV sends follow UCX's different protocol selection for
    // UCP_DATATYPE_IOV (larger eager range; see WireParams).
    const Count eager_limit = std::holds_alternative<IovDesc>(rq.desc)
                                  ? params_.iov_eager_threshold
                                  : params_.eager_threshold;
    // UCX semantics: messages of at least the threshold go rendezvous, so
    // the 2^15 point itself is the first rendezvous size (paper Fig. 7).
    if (total < eager_limit) {
        PooledBuf payload = PooledBuf::make(static_cast<std::size_t>(total));
        Count used = 0;
        SimTime pack_cost = 0.0;
        const Status rst = rq.source->read(0, payload.span(), &used, pack_cost);
        clock_.advance(pack_cost);
        record_pack_throughput(used, pack_cost);
        if (!ok(rst) || used != total) {
            complete_locked(rq, ok(rst) ? Status::err_pack : rst, 0, 0);
            return;
        }
        frag_bytes_hist().record(static_cast<std::uint64_t>(total));
        netsim::Packet pkt;
        pkt.src = ep_;
        pkt.dst = rq.peer;
        pkt.kind = kEager;
        pkt.header = encode_header(EagerHeader{rq.tag, total});
        pkt.payload = std::move(payload);
        pkt.msg_id = rq.msg_id;
        pkt.post_vtime = rq.post_vtime;
        trace::instant("ucx", "eager_send", clock_.now(), "bytes",
                       static_cast<std::uint64_t>(total), "tag",
                       static_cast<std::uint64_t>(rq.tag));
        send_packet_locked(std::move(pkt), clock_.now(), total,
                           rq.source->sg_entries(), /*rail=*/0,
                           /*control=*/false, &rq);
        ++stats_.eager_sends;
        stats_.bytes_sent += static_cast<std::uint64_t>(total);
        if (reliable_) {
            // Reliable mode: the send completes when the packet is
            // acknowledged (or fails with Status::timeout).
            rq.finish_on_ack = true;
            rq.fin_status = Status::success;
            rq.fin_len = total;
        } else {
            complete_locked(rq, Status::success, total, 0);
        }
        return;
    }

    // Rendezvous: announce with RTS, wait for CTS in progress().
    rq.op_id = next_op_id_++;
    rq.expected_total = total;
    ++stats_.rndv_sends;
    stats_.bytes_sent += static_cast<std::uint64_t>(total);
    rndv_sends_.emplace(rq.op_id, rq.id);
    netsim::Packet pkt;
    pkt.src = ep_;
    pkt.dst = rq.peer;
    pkt.kind = kRts;
    pkt.header = encode_header(RtsHeader{rq.tag, rq.op_id, total});
    pkt.msg_id = rq.msg_id;
    pkt.post_vtime = rq.post_vtime;
    trace::instant("ucx", "rndv_rts", clock_.now(), "bytes",
                   static_cast<std::uint64_t>(total), "op", rq.op_id);
    send_packet_locked(std::move(pkt), clock_.now() + params_.rndv_ctrl_us,
                       /*wire_bytes=*/0, /*sg_entries=*/1, /*rail=*/0,
                       /*control=*/true, &rq);
}

// ---------------------------------------------------------------------------
// Receive path

RequestId Worker::tag_recv(Tag tag, Tag mask, BufferDesc desc) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const RequestId id = alloc_request_locked();
    auto rq_owner = std::make_unique<Request>();
    Request& rq = *rq_owner;
    rq.kind = Request::Kind::recv;
    rq.id = id;
    rq.tag = tag;
    rq.mask = mask;
    rq.desc = std::move(desc);
    requests_.emplace(id, std::move(rq_owner));

    // Earliest-arrived unexpected message accepted by (tag, mask), if any.
    if (auto u = matcher_.take_unexpected(tag, mask)) {
        note_unexpected_dwell_locked(*u);
        rq.msg_id = u->msg_id;
        rq.post_vtime = u->post_vtime;
        if (u->kind == UnexpectedMsg::Kind::eager) {
            match_eager_locked(rq, u->tag, std::move(u->payload), u->arrival);
        } else {
            match_rts_locked(rq, u->tag, u->src, u->total, u->sender_op,
                             u->arrival);
        }
        return id;
    }
    matcher_.post_recv(id, tag, mask);
    return id;
}

void Worker::note_unexpected_dwell_locked(const UnexpectedMsg& u) {
    const SimTime now = clock_.now();
    const SimTime dwell_us = now > u.arrival ? now - u.arrival : 0.0;
    unexpected_dwell_hist().record(static_cast<std::uint64_t>(dwell_us * 1000.0));
}

void Worker::match_eager_locked(Request& rq, Tag sender_tag, PooledBuf&& payload,
                                SimTime arrival) {
    // Unpack (sink->write) and completion happen on the sender's message.
    const trace::MsgScope msg_scope(rq.msg_id);
    clock_.observe(arrival);
    rq.sink.emplace(rq.desc);
    if (!ok(rq.sink->init_error())) {
        complete_locked(rq, rq.sink->init_error(), 0, sender_tag);
        return;
    }
    const Count len = static_cast<Count>(payload.size());
    const Count deliver = std::min(len, rq.sink->capacity());
    SimTime host_cost = 0.0;
    const Status st =
        rq.sink->write(0, ConstBytes(payload.data(), static_cast<std::size_t>(deliver)),
                       host_cost);
    if (rq.sink->exposes_memory()) {
        // Bounce-buffer copy performed by the receiving CPU: modeled cost.
        clock_.advance(params_.host_copy_time(deliver));
    } else {
        clock_.advance(host_cost); // measured unpack-callback time
    }
    if (!ok(st)) {
        complete_locked(rq, st, deliver, sender_tag);
        return;
    }
    complete_locked(rq, len > rq.sink->capacity() ? Status::err_truncate : Status::success,
                    deliver, sender_tag);
}

void Worker::match_rts_locked(Request& rq, Tag sender_tag, int src, Count total_len,
                              std::uint64_t sender_op, SimTime arrival) {
    const trace::MsgScope msg_scope(rq.msg_id);
    clock_.observe(arrival);
    rq.sink.emplace(rq.desc);
    rq.peer = src;
    rq.comp.sender_tag = sender_tag;
    if (!ok(rq.sink->init_error())) {
        complete_locked(rq, rq.sink->init_error(), 0, sender_tag);
        // Tell the sender to abort so its request does not hang.
        netsim::Packet pkt;
        pkt.src = ep_;
        pkt.dst = src;
        pkt.kind = kCts;
        pkt.header = encode_header(CtsHeader{sender_op, 0, CtsMode::abort, 0});
        pkt.msg_id = rq.msg_id;
        send_packet_locked(std::move(pkt), clock_.now(), 0, 1, 0,
                           /*control=*/true, nullptr);
        return;
    }
    if (total_len > rq.sink->capacity()) {
        complete_locked(rq, Status::err_truncate, 0, sender_tag);
        netsim::Packet pkt;
        pkt.src = ep_;
        pkt.dst = src;
        pkt.kind = kCts;
        pkt.header = encode_header(CtsHeader{sender_op, 0, CtsMode::abort, 0});
        pkt.msg_id = rq.msg_id;
        send_packet_locked(std::move(pkt), clock_.now(), 0, 1, 0,
                           /*control=*/true, nullptr);
        return;
    }

    rq.op_id = next_op_id_++;
    rq.expected_total = total_len;
    rndv_recvs_.emplace(rq.op_id, rq.id);
    send_cts_locked(rq, src, sender_op);
}

void Worker::send_cts_locked(Request& rq, int src, std::uint64_t sender_op) {
    netsim::Packet pkt;
    pkt.src = ep_;
    pkt.dst = src;
    pkt.kind = kCts;
    pkt.msg_id = rq.msg_id;
    pkt.post_vtime = rq.post_vtime;
    if (rq.sink->exposes_memory()) {
        const auto& regions = rq.sink->regions();
        CtsHeader h{sender_op, rq.op_id, CtsMode::rdma,
                    static_cast<std::uint32_t>(regions.size())};
        pkt.header = encode_header(h);
        const std::size_t old = pkt.header.size();
        pkt.header.resize(old + regions.size() * sizeof(IovEntry));
        std::memcpy(pkt.header.data() + old, regions.data(),
                    regions.size() * sizeof(IovEntry));
    } else {
        // Pipeline mode: reuse the nregions field as a flag telling the
        // sender whether the sink tolerates out-of-order fragments.
        const std::uint32_t ooo_ok = rq.sink->allows_out_of_order() ? 1u : 0u;
        pkt.header =
            encode_header(CtsHeader{sender_op, rq.op_id, CtsMode::pipeline, ooo_ok});
    }
    trace::instant("ucx", "rndv_cts", clock_.now(), "op", rq.op_id, "rdma",
                   rq.sink->exposes_memory() ? 1 : 0);
    send_packet_locked(std::move(pkt), clock_.now() + params_.rndv_ctrl_us, 0, 1, 0,
                       /*control=*/true, &rq);
    if (reliable_) {
        // Receiver-side watchdog: if the sender goes silent past the whole
        // retransmit envelope, the operation fails with Status::timeout.
        rq.op_deadline = clock_.now() + params_.effective_op_timeout();
    }
}

// ---------------------------------------------------------------------------
// Progress engine

bool Worker::progress() {
    // Per-worker serialization: exactly one thread drains this endpoint at
    // a time, which keeps packet handling in arrival order; a concurrent
    // caller (a rank thread helping a peer) skips instead of blocking.
    bool expected = false;
    if (!progress_busy_.compare_exchange_strong(expected, true,
                                                std::memory_order_acquire))
        return false;
    bool did_work = false;
    while (true) {
        auto pkt = fabric_.poll(ep_);
        if (!pkt) break;
        did_work = true;
        if (pkt->kind == kAck) {
            const std::lock_guard<std::mutex> lock(mutex_);
            const trace::MsgScope msg_scope(pkt->msg_id);
            handle_ack_locked(*pkt);
            continue;
        }
        // The reliability filter may consume the packet (duplicate / CRC
        // failure) before it reaches the protocol state machines — without
        // touching the protocol mutex.
        if (!admit_data_packet(*pkt)) continue;
        const std::lock_guard<std::mutex> lock(mutex_);
        const trace::MsgScope msg_scope(pkt->msg_id);
        if (pkt->link_seq != 0) {
            refresh_reliable_locked();
            clock_.observe(pkt->arrival);
            if (pkt->needs_ack) send_ack_locked(*pkt);
        }
        handle_packet_locked(std::move(*pkt));
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        did_work = fire_timers_locked() || did_work;
    }
    // Hooks run with the busy flag still held so a hook is never
    // re-entered on this worker, but with no protocol lock so it may post
    // new operations.
    if (hooks_present_.load(std::memory_order_acquire)) {
        did_work = run_hooks() || did_work;
    }
    progress_busy_.store(false, std::memory_order_release);
    return did_work;
}

std::uint64_t Worker::add_progress_hook(std::function<bool()> fn) {
    const std::lock_guard<std::mutex> lock(hooks_mutex_);
    const std::uint64_t token = next_hook_token_++;
    hooks_.emplace_back(
        token, std::make_shared<std::function<bool()>>(std::move(fn)));
    hooks_present_.store(true, std::memory_order_release);
    return token;
}

void Worker::remove_progress_hook(std::uint64_t token) {
    const std::lock_guard<std::mutex> lock(hooks_mutex_);
    for (auto it = hooks_.begin(); it != hooks_.end(); ++it) {
        if (it->first == token) {
            hooks_.erase(it);
            break;
        }
    }
    hooks_present_.store(!hooks_.empty(), std::memory_order_release);
}

bool Worker::run_hooks() {
    // Snapshot under the leaf lock, run without it: a hook may add or
    // remove hooks (including itself) while the snapshot is iterated.
    std::vector<std::shared_ptr<std::function<bool()>>> snapshot;
    {
        const std::lock_guard<std::mutex> lock(hooks_mutex_);
        snapshot.reserve(hooks_.size());
        for (const auto& [token, fn] : hooks_) snapshot.push_back(fn);
    }
    bool did_work = false;
    for (const auto& fn : snapshot) {
        if ((*fn)()) did_work = true;
    }
    return did_work;
}

void Worker::handle_packet_locked(netsim::Packet&& pkt) {
    switch (pkt.kind) {
        case kEager: handle_eager_locked(std::move(pkt)); break;
        case kRts: handle_rts_locked(std::move(pkt)); break;
        case kCts: handle_cts_locked(std::move(pkt)); break;
        case kFin: handle_fin_locked(std::move(pkt)); break;
        case kFrag: handle_frag_locked(std::move(pkt)); break;
        default:
            MPICD_LOG_ERROR("unknown packet kind " << pkt.kind);
            break;
    }
}

Worker::Request* Worker::find_posted_locked(Tag tag) {
    const auto id = matcher_.match_posted(tag);
    if (!id) return nullptr;
    return requests_.at(*id).get();
}

void Worker::handle_eager_locked(netsim::Packet&& pkt) {
    const auto h = decode_header<EagerHeader>(pkt.header);
    if (Request* rq = find_posted_locked(h.tag)) {
        rq->msg_id = pkt.msg_id;
        rq->post_vtime = pkt.post_vtime;
        match_eager_locked(*rq, h.tag, std::move(pkt.payload), pkt.arrival);
        return;
    }
    UnexpectedMsg u;
    u.kind = UnexpectedMsg::Kind::eager;
    u.tag = h.tag;
    u.src = pkt.src;
    u.total = h.total;
    u.payload = std::move(pkt.payload);
    u.arrival = pkt.arrival;
    u.msg_id = pkt.msg_id;
    u.post_vtime = pkt.post_vtime;
    ++stats_.unexpected_msgs;
    matcher_.add_unexpected(std::move(u));
}

void Worker::handle_rts_locked(netsim::Packet&& pkt) {
    const auto h = decode_header<RtsHeader>(pkt.header);
    if (Request* rq = find_posted_locked(h.tag)) {
        rq->msg_id = pkt.msg_id;
        rq->post_vtime = pkt.post_vtime;
        match_rts_locked(*rq, h.tag, pkt.src, h.total, h.sender_op, pkt.arrival);
        return;
    }
    UnexpectedMsg u;
    u.kind = UnexpectedMsg::Kind::rts;
    u.tag = h.tag;
    u.src = pkt.src;
    u.total = h.total;
    u.sender_op = h.sender_op;
    u.arrival = pkt.arrival;
    u.msg_id = pkt.msg_id;
    u.post_vtime = pkt.post_vtime;
    ++stats_.unexpected_msgs;
    matcher_.add_unexpected(std::move(u));
}

void Worker::handle_cts_locked(netsim::Packet&& pkt) {
    clock_.observe(pkt.arrival);
    const auto h = decode_header<CtsHeader>(pkt.header);
    const auto it = rndv_sends_.find(h.sender_op);
    if (it == rndv_sends_.end()) {
        MPICD_LOG_ERROR("CTS for unknown sender op " << h.sender_op);
        return;
    }
    Request& rq = *requests_.at(it->second);
    rndv_sends_.erase(it);
    // Data-phase events (pack reads, rdma/frag sends, FIN) belong to the
    // send request's message.
    const trace::MsgScope msg_scope(rq.msg_id);

    if (h.mode == CtsMode::abort) {
        complete_locked(rq, Status::err_truncate, 0, 0);
        return;
    }

    const Count total = rq.expected_total;
    const Count frag_size = params_.rndv_frag_size;
    Status st = Status::success;

    if (h.mode == CtsMode::rdma) {
        // Zero-copy path: write straight into the receiver's exposed
        // regions; cost is pure wire time (link-serialized), no bounce.
        // The region table rides in the CTS header after the fixed part;
        // a header too short for the announced region count would read
        // out of bounds, so fail the operation instead.
        if (pkt.header.size() <
            sizeof(CtsHeader) + h.nregions * sizeof(IovEntry)) {
            MPICD_LOG_ERROR("CTS header truncated: " << pkt.header.size()
                            << " bytes for " << h.nregions << " regions");
            complete_locked(rq, Status::err_truncate, 0, 0);
            return;
        }
        std::vector<IovEntry> recv_regions(h.nregions);
        std::memcpy(recv_regions.data(), pkt.header.data() + sizeof(CtsHeader),
                    h.nregions * sizeof(IovEntry));
        // Memory-backed sources transfer region-to-region like a real NIC's
        // scatter-gather DMA — no bounce buffer, no host copy (the moved
        // bytes land in datapath/bytes_dma, keeping copy_amp honest for the
        // zero-serialization fast path). Generic sources still pack through
        // a bounce fragment.
        const bool direct = rq.source->exposes_memory();
        PooledBuf bounce;
        if (!direct)
            bounce = PooledBuf::make(
                static_cast<std::size_t>(std::min(total, frag_size)));
        Count offset = 0;
        SimTime data_done = clock_.now();
        const Count sg =
            std::max(rq.source->sg_entries(), static_cast<Count>(h.nregions));
        bool first = true;
        while (offset < total && ok(st)) {
            const Count want = std::min(frag_size, total - offset);
            Count used = 0;
            if (direct) {
                st = dma_regions(rq.source->regions(), recv_regions, offset, want,
                                 &used);
                if (ok(st) && used == 0) st = Status::err_pack;
                if (!ok(st)) break;
                frag_bytes_hist().record(static_cast<std::uint64_t>(used));
            } else {
                SimTime pack_cost = 0.0;
                st = rq.source->read(offset,
                                     MutBytes(bounce.data(), static_cast<std::size_t>(want)),
                                     &used, pack_cost);
                clock_.advance(pack_cost);
                record_pack_throughput(used, pack_cost);
                if (ok(st) && used == 0) st = Status::err_pack;
                if (!ok(st)) break;
                frag_bytes_hist().record(static_cast<std::uint64_t>(used));
                st = scatter_into_regions(recv_regions, offset,
                                          ConstBytes(bounce.data(), static_cast<std::size_t>(used)));
                if (!ok(st)) break;
            }
            data_done = fabric_.rdma_cost(ep_, rq.peer, used, first ? sg : 1,
                                          clock_.now() + params_.frag_overhead_us);
            trace::instant("ucx", "rdma_frag", data_done, "offset",
                           static_cast<std::uint64_t>(offset), "bytes",
                           static_cast<std::uint64_t>(used));
            offset += used;
            first = false;
        }
        trace::instant("ucx", "rndv_rdma", data_done, "bytes",
                       static_cast<std::uint64_t>(offset), "op", h.recv_op);
        netsim::Packet fin;
        fin.src = ep_;
        fin.dst = rq.peer;
        fin.kind = kFin;
        fin.header = encode_header(
            FinHeader{h.recv_op, data_done, offset, static_cast<std::int32_t>(st)});
        fin.msg_id = rq.msg_id;
        fin.post_vtime = rq.post_vtime;
        send_packet_locked(std::move(fin), data_done, 0, 1, 0, /*control=*/true,
                           &rq);
        ++stats_.rndv_rdma;
        if (reliable_) {
            rq.finish_on_ack = true;
            rq.fin_status = st;
            rq.fin_len = offset;
        } else {
            complete_locked(rq, st, offset, 0);
        }
        return;
    }

    // Pipelined fragment path (receive side is a generic datatype).
    // When BOTH datatypes tolerate out-of-order fragments (inorder=false),
    // fragments stripe across the fabric's rails — the optimization the
    // paper's inorder flag would inhibit (Listing 2 discussion).
    const bool stripe = rq.source->allows_out_of_order() && h.nregions != 0 &&
                        params_.rails > 1;
    Count offset = 0;
    int frag_idx = 0;
    while (offset < total && ok(st)) {
        const Count want = std::min(frag_size, total - offset);
        PooledBuf frag = PooledBuf::make(static_cast<std::size_t>(want));
        Count used = 0;
        SimTime pack_cost = 0.0;
        st = rq.source->read(offset, frag.span(), &used, pack_cost);
        clock_.advance(pack_cost);
        record_pack_throughput(used, pack_cost);
        if (ok(st) && used == 0) st = Status::err_pack;
        if (!ok(st)) break;
        frag_bytes_hist().record(static_cast<std::uint64_t>(used));
        // A short custom-type read must not pin the full `want`-sized slab
        // for the fragment's wire + retransmit lifetime: shrink_to re-slabs
        // when at least a whole smaller size class is freed.
        frag.shrink_to(static_cast<std::size_t>(used));
        const bool last = offset + used >= total;
        netsim::Packet fp;
        fp.src = ep_;
        fp.dst = rq.peer;
        fp.kind = kFrag;
        fp.header = encode_header(FragHeader{h.recv_op, offset, total, last ? 1u : 0u});
        fp.payload = std::move(frag);
        fp.msg_id = rq.msg_id;
        fp.post_vtime = rq.post_vtime;
        trace::instant("ucx", "frag_send", clock_.now(), "offset",
                       static_cast<std::uint64_t>(offset), "bytes",
                       static_cast<std::uint64_t>(used));
        send_packet_locked(std::move(fp), clock_.now() + params_.frag_overhead_us,
                           used, rq.source->sg_entries(),
                           stripe ? frag_idx % params_.rails : 0,
                           /*control=*/false, &rq);
        offset += used;
        ++frag_idx;
    }
    if (!ok(st)) {
        // Tell the receiver the stream is broken.
        netsim::Packet fp;
        fp.src = ep_;
        fp.dst = rq.peer;
        fp.kind = kFin;
        fp.header = encode_header(
            FinHeader{h.recv_op, clock_.now(), offset, static_cast<std::int32_t>(st)});
        fp.msg_id = rq.msg_id;
        fp.post_vtime = rq.post_vtime;
        send_packet_locked(std::move(fp), clock_.now(), 0, 1, 0, /*control=*/true,
                           nullptr);
    }
    ++stats_.rndv_pipeline;
    if (ok(st) && reliable_ && rq.unacked > 0) {
        // Reliable mode: the pipelined send completes when every fragment
        // is acknowledged (or fails with Status::timeout).
        rq.finish_on_ack = true;
        rq.fin_status = st;
        rq.fin_len = offset;
    } else {
        complete_locked(rq, st, offset, 0);
    }
}

void Worker::handle_fin_locked(netsim::Packet&& pkt) {
    clock_.observe(pkt.arrival);
    const auto h = decode_header<FinHeader>(pkt.header);
    const auto it = rndv_recvs_.find(h.recv_op);
    if (it == rndv_recvs_.end()) return;
    Request& rq = *requests_.at(it->second);
    rndv_recvs_.erase(it);
    const trace::MsgScope msg_scope(rq.msg_id);
    clock_.observe(h.data_vtime);
    trace::instant("ucx", "rndv_fin", clock_.now(), "bytes",
                   static_cast<std::uint64_t>(h.total), "op", h.recv_op);
    complete_locked(rq, static_cast<Status>(h.status), h.total, rq.comp.sender_tag);
}

void Worker::handle_frag_locked(netsim::Packet&& pkt) {
    clock_.observe(pkt.arrival);
    const auto h = decode_header<FragHeader>(pkt.header);
    const auto it = rndv_recvs_.find(h.recv_op);
    if (it == rndv_recvs_.end()) return;
    Request& rq = *requests_.at(it->second);
    // Sink writes (generic unpack callbacks) and completion run under the
    // message that produced the fragment.
    const trace::MsgScope msg_scope(rq.msg_id);
    trace::instant("ucx", "frag_recv", clock_.now(), "offset",
                   static_cast<std::uint64_t>(h.offset), "bytes",
                   static_cast<std::uint64_t>(pkt.payload.size()));
    // The stream is alive: push the operation watchdog out.
    if (rq.op_deadline > 0.0)
        rq.op_deadline = clock_.now() + params_.effective_op_timeout();

    // An in-order sink cannot accept a fragment past a gap (a dropped
    // fragment only arrives later, via retransmission): stash the pooled
    // payload — no staging copy, the slab just changes owner — and apply
    // once the stream catches up. In-order fragments (the entire stream
    // on a lossless fabric) feed the sink directly from the packet
    // payload and never touch the stash.
    if (h.offset != rq.bytes_received && !rq.sink->allows_out_of_order()) {
        auto& stash = rq.frag_stash;
        const auto pos = std::lower_bound(
            stash.begin(), stash.end(), h.offset,
            [](const auto& e, Count off) { return e.first < off; });
        stash.insert(pos, {h.offset, std::move(pkt.payload)});
        return;
    }

    const auto apply = [&](Count offset, ConstBytes bytes) {
        SimTime host_cost = 0.0;
        const Status wst = rq.sink->write(offset, bytes, host_cost);
        if (rq.sink->exposes_memory()) {
            clock_.advance(params_.host_copy_time(static_cast<Count>(bytes.size())));
        } else {
            clock_.advance(host_cost);
        }
        rq.bytes_received += static_cast<Count>(bytes.size());
        return wst;
    };

    Status st = apply(h.offset, pkt.payload.cspan());
    // Drain stashed fragments that the stream has now reached (the stash
    // is sorted by offset, so each catch-up candidate is the front).
    while (ok(st) && !rq.frag_stash.empty() &&
           rq.frag_stash.front().first == rq.bytes_received) {
        const PooledBuf bytes = std::move(rq.frag_stash.front().second);
        rq.frag_stash.erase(rq.frag_stash.begin());
        st = apply(rq.bytes_received, bytes.cspan());
    }
    if (!ok(st)) {
        rndv_recvs_.erase(h.recv_op);
        complete_locked(rq, st, rq.bytes_received, rq.comp.sender_tag);
        return;
    }
    // Reliable mode: fragments may arrive with gaps (a dropped fragment is
    // retransmitted later), so only the byte count decides completion; the
    // `last` flag shortcut is valid only on the lossless FIFO fabric.
    const bool all = rq.bytes_received >= rq.expected_total;
    if (reliable_ ? all : (h.last != 0 || all)) {
        rndv_recvs_.erase(h.recv_op);
        complete_locked(rq, Status::success, rq.bytes_received, rq.comp.sender_tag);
    }
}

// ---------------------------------------------------------------------------
// Completion / probe API

bool Worker::is_complete(RequestId id) {
    // Registry-only read: completion polling never contends with the
    // protocol mutex (a rank thread spinning in wait() does not stall a
    // peer thread progressing this worker).
    const std::lock_guard<std::mutex> lock(comp_mutex_);
    return completed_.count(id) != 0;
}

Completion Worker::take_completion(RequestId id) {
    Completion comp;
    {
        const std::lock_guard<std::mutex> lock(comp_mutex_);
        const auto it = completed_.find(id);
        assert(it != completed_.end());
        comp = it->second;
        completed_.erase(it);
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    requests_.erase(id);
    return comp;
}

bool Worker::cancel_recv(RequestId id) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = requests_.find(id);
    if (it == requests_.end() || it->second->done) return false;
    if (!matcher_.cancel_posted(id, it->second->tag, it->second->mask))
        return false;
    requests_.erase(it);
    return true;
}

std::optional<ProbeInfo> Worker::probe(Tag tag, Tag mask) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const UnexpectedMsg* u = matcher_.peek_unexpected(tag, mask);
    if (u == nullptr) return std::nullopt;
    return ProbeInfo{u->tag, u->total, u->src};
}

std::optional<MessageHandle> Worker::mprobe(Tag tag, Tag mask) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto u = matcher_.take_unexpected(tag, mask);
    if (!u) return std::nullopt;
    note_unexpected_dwell_locked(*u);
    MessageHandle handle;
    handle.id = next_op_id_++;
    handle.info = ProbeInfo{u->tag, u->total, u->src};
    mprobed_.emplace(handle.id, std::move(*u));
    return handle;
}

RequestId Worker::imrecv(const MessageHandle& handle, BufferDesc desc) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = mprobed_.find(handle.id);
    if (it == mprobed_.end()) return kInvalidRequest;
    UnexpectedMsg u = std::move(it->second);
    mprobed_.erase(it);

    const RequestId id = alloc_request_locked();
    auto rq_owner = std::make_unique<Request>();
    Request& rq = *rq_owner;
    rq.kind = Request::Kind::recv;
    rq.id = id;
    rq.tag = u.tag;
    rq.desc = std::move(desc);
    rq.msg_id = u.msg_id;
    rq.post_vtime = u.post_vtime;
    requests_.emplace(id, std::move(rq_owner));
    if (u.kind == UnexpectedMsg::Kind::eager) {
        match_eager_locked(rq, u.tag, std::move(u.payload), u.arrival);
    } else {
        match_rts_locked(rq, u.tag, u.src, u.total, u.sender_op, u.arrival);
    }
    return id;
}

WorkerStats Worker::stats() {
    const std::lock_guard<std::mutex> lock(mutex_);
    WorkerStats s = stats_;
    // Admission-context counters live outside the protocol mutex.
    s.duplicates_suppressed += adm_dups_.load(std::memory_order_relaxed);
    s.corruption_detected += adm_corruption_.load(std::memory_order_relaxed);
    s.acks_sent += adm_acks_sent_.load(std::memory_order_relaxed);
    return s;
}

bool Worker::idle() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return requests_.empty() && matcher_.empty() && mprobed_.empty() &&
           rndv_sends_.empty() && rndv_recvs_.empty() && pending_tx_.empty();
}

void Worker::dump_state_locked(std::FILE* out) const {
    std::fprintf(out, "endpoint %d  vtime %.3f us  reliable %d\n", ep_,
                 clock_.now(), reliable_ ? 1 : 0);
    std::fprintf(out, "in-flight requests (%zu):\n", requests_.size());
    for (const auto& [id, rq] : requests_) {
        std::fprintf(out,
                     "  req %llu %s msg=%llu tag=%llu peer=%d done=%d "
                     "bytes=%lld/%lld unacked=%d retransmits=%llu "
                     "deadline=%.3f\n",
                     static_cast<unsigned long long>(id),
                     rq->kind == Request::Kind::recv ? "recv" : "send",
                     static_cast<unsigned long long>(rq->msg_id),
                     static_cast<unsigned long long>(rq->tag), rq->peer,
                     rq->done ? 1 : 0,
                     static_cast<long long>(rq->bytes_received),
                     static_cast<long long>(rq->expected_total), rq->unacked,
                     static_cast<unsigned long long>(rq->retransmits),
                     rq->op_deadline);
    }
    std::fprintf(out, "pending retransmit queue (%zu):\n", pending_tx_.size());
    for (const auto& [seq, ptx] : pending_tx_) {
        std::fprintf(out,
                     "  seq %llu kind=%u msg=%llu retries=%d rto=%.3f "
                     "next_retry=%.3f owner=%llu\n",
                     static_cast<unsigned long long>(seq), ptx.pkt.kind,
                     static_cast<unsigned long long>(ptx.pkt.msg_id),
                     ptx.retries, ptx.rto, ptx.next_retry,
                     static_cast<unsigned long long>(ptx.owner));
    }
    std::fprintf(out,
                 "matcher=%s posted_recvs=%zu unexpected=%zu mprobed=%zu "
                 "rndv_sends=%zu rndv_recvs=%zu\n",
                 matcher_.mode() == TagMatcher::Mode::hashed ? "hashed"
                                                             : "linear",
                 matcher_.posted_size(), matcher_.unexpected_size(),
                 mprobed_.size(), rndv_sends_.size(), rndv_recvs_.size());
    for (std::size_t src = 0; src < shards_.size(); ++src) {
        const PeerShard& shard = shards_[src];
        // Shard mutexes are leaves (never held while acquiring another
        // lock), so taking them under the protocol mutex cannot deadlock.
        const std::lock_guard<std::mutex> sk(shard.mu);
        if (shard.seen.empty()) continue;
        std::fprintf(out, "peer %zu: %zu delivered link_seqs\n", src,
                     shard.seen.size());
    }
    std::fprintf(out,
                 "stats: retransmits=%llu dups=%llu crc=%llu acks=%llu/%llu "
                 "timeouts=%llu\n",
                 static_cast<unsigned long long>(stats_.retransmits),
                 static_cast<unsigned long long>(
                     stats_.duplicates_suppressed +
                     adm_dups_.load(std::memory_order_relaxed)),
                 static_cast<unsigned long long>(
                     stats_.corruption_detected +
                     adm_corruption_.load(std::memory_order_relaxed)),
                 static_cast<unsigned long long>(
                     stats_.acks_sent +
                     adm_acks_sent_.load(std::memory_order_relaxed)),
                 static_cast<unsigned long long>(stats_.acks_received),
                 static_cast<unsigned long long>(stats_.timeouts));
}

} // namespace mpicd::ucx
