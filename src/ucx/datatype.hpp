// Transport-level datatype descriptors, mirroring the UCP datatypes the
// paper's prototype uses: UCP_DATATYPE_CONTIG, UCP_DATATYPE_IOV and
// UCP_DATATYPE_GENERIC. A send or receive operation names one of these;
// the worker picks the protocol (eager / rendezvous, zero-copy / pipelined)
// from the descriptor kind and the message size.
#pragma once

#include <memory>
#include <variant>
#include <vector>

#include "base/bytes.hpp"
#include "base/status.hpp"
#include "base/time.hpp"

namespace mpicd::ucx {

// Generic (callback-driven) datatype operations, modeled on UCP's
// ucp_generic_dt_ops_t. The custom-datatype engine in src/core lowers the
// paper's pack/unpack callbacks onto this interface.
struct GenericOps {
    // Sender side. start_pack creates per-operation state; packed_size
    // reports the total number of bytes pack() will produce.
    Status (*start_pack)(void* ctx, const void* buf, Count count, void** state) = nullptr;
    Status (*packed_size)(void* state, Count* size) = nullptr;
    // Pack up to dst_size bytes at virtual offset `offset` into dst;
    // reports the number of bytes produced in *used.
    Status (*pack)(void* state, Count offset, void* dst, Count dst_size, Count* used) = nullptr;

    // Receiver side.
    Status (*start_unpack)(void* ctx, void* buf, Count count, void** state) = nullptr;
    Status (*unpack)(void* state, Count offset, const void* src, Count src_size) = nullptr;

    // Both sides: release per-operation state.
    void (*finish)(void* state) = nullptr;

    void* ctx = nullptr;
    // If true, fragments must be packed/unpacked in increasing-offset order
    // (the paper's `inorder` flag, Listing 2); this disables the multi-rail
    // out-of-order pipeline optimization.
    bool inorder = true;
};

struct ContigDesc {
    const void* send_ptr = nullptr; // used on the send side
    void* recv_ptr = nullptr;       // used on the receive side
    Count len = 0;                  // bytes
};

struct IovDesc {
    std::vector<IovEntry> entries; // base pointers + byte lengths
    // Optional owned storage some entries may point into (e.g. the packed
    // first element of a custom-datatype message). Shared so a deferred
    // unpack step can outlive the transport request.
    std::shared_ptr<ByteVec> backing;
};

struct GenericDesc {
    GenericOps ops;
    const void* send_buf = nullptr; // user buffer handed to start_pack
    void* recv_buf = nullptr;       // user buffer handed to start_unpack
    Count count = 0;                // element count passed through
    // Optional ownership anchor keeping ops.ctx alive for the lifetime of
    // the operation (e.g. a datatype-engine context).
    std::shared_ptr<void> keepalive;
};

// A transport buffer descriptor (one side of an operation).
using BufferDesc = std::variant<ContigDesc, IovDesc, GenericDesc>;

[[nodiscard]] inline BufferDesc make_contig_send(const void* p, Count len) {
    ContigDesc d;
    d.send_ptr = p;
    d.len = len;
    return d;
}

[[nodiscard]] inline BufferDesc make_contig_recv(void* p, Count len) {
    ContigDesc d;
    d.recv_ptr = p;
    d.len = len;
    return d;
}

[[nodiscard]] inline BufferDesc make_iov(std::vector<IovEntry> entries) {
    IovDesc d;
    d.entries = std::move(entries);
    return d;
}

} // namespace mpicd::ucx
