#include "ucx/matcher.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>

#include "base/metrics.hpp"

namespace mpicd::ucx {

namespace {

// Distribution of entries examined per match attempt. For the hashed
// matcher this is the number of mask groups (posted side) or the scan
// position in the arrival list (wildcard unexpected side); for the linear
// matcher it is the scan position in the FIFO. Looked up once — the
// registry lookup takes a lock.
Histogram& probe_len_hist() {
    static Histogram& h = metrics().histogram("match", "probe_len");
    return h;
}

} // namespace

TagMatcher::Mode TagMatcher::mode_from_env() {
    const char* v = std::getenv("MPICD_TAG_MATCH");
    if (v != nullptr && std::strcmp(v, "linear") == 0) return Mode::linear;
    return Mode::hashed;
}

TagMatcher::TagMatcher(Mode mode) : mode_(mode) {}

TagMatcher::~TagMatcher() {
    // Fold the counters into the process-wide registry so BENCH_*.json
    // snapshots aggregate every matcher that ever lived.
    MetricsRegistry& m = metrics();
    m.add("match", "probes", stats_.probes);
    m.add("match", "scanned_entries", stats_.scanned_entries);
    m.add("match", "posted_matches", stats_.posted_matches);
    m.add("match", "unexpected_matches", stats_.unexpected_matches);
    m.add("match", "wildcard_hits", stats_.wildcard_hits);
}

void TagMatcher::note_probe(std::uint64_t scanned) {
    ++stats_.probes;
    stats_.scanned_entries += scanned;
    probe_len_hist().record(scanned);
}

TagMatcher::MaskGroup& TagMatcher::group_for(Tag mask) {
    for (auto& g : groups_) {
        if (g.mask == mask) return g;
    }
    groups_.push_back(MaskGroup{mask, {}});
    return groups_.back();
}

void TagMatcher::post_recv(RequestId id, Tag tag, Tag mask) {
    PostedEntry e{id, tag, mask, next_seq_++};
    if (mode_ == Mode::linear) {
        posted_fifo_.push_back(e);
    } else {
        group_for(mask).buckets[tag & mask].push_back(e);
    }
    ++posted_count_;
}

std::optional<RequestId> TagMatcher::match_posted(Tag incoming) {
    if (mode_ == Mode::linear) {
        std::uint64_t scanned = 0;
        for (auto it = posted_fifo_.begin(); it != posted_fifo_.end(); ++it) {
            ++scanned;
            if (!tag_matches(it->tag, it->mask, incoming)) continue;
            const RequestId id = it->id;
            if (it->mask != ~Tag{0}) ++stats_.wildcard_hits;
            posted_fifo_.erase(it);
            --posted_count_;
            ++stats_.posted_matches;
            note_probe(scanned);
            return id;
        }
        note_probe(scanned);
        return std::nullopt;
    }

    // Hashed: each group contributes at most one candidate (its bucket
    // front, the earliest-posted entry for this mask); the smallest posting
    // sequence across groups wins — exactly posting order.
    std::uint64_t scanned = 0;
    std::size_t best_group = groups_.size();
    Tag best_key = 0;
    std::uint64_t best_seq = 0;
    for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
        ++scanned;
        auto& g = groups_[gi];
        const auto it = g.buckets.find(incoming & g.mask);
        if (it == g.buckets.end()) continue;
        assert(!it->second.empty());
        const PostedEntry& front = it->second.front();
        if (best_group == groups_.size() || front.seq < best_seq) {
            best_group = gi;
            best_key = it->first;
            best_seq = front.seq;
        }
    }
    note_probe(scanned);
    if (best_group == groups_.size()) return std::nullopt;
    MaskGroup& g = groups_[best_group];
    auto bucket = g.buckets.find(best_key);
    const RequestId id = bucket->second.front().id;
    if (g.mask != ~Tag{0}) ++stats_.wildcard_hits;
    bucket->second.pop_front();
    if (bucket->second.empty()) g.buckets.erase(bucket);
    if (g.buckets.empty()) {
        // Groups are unordered (arbitration is by sequence): swap-and-pop.
        g = std::move(groups_.back());
        groups_.pop_back();
    }
    --posted_count_;
    ++stats_.posted_matches;
    return id;
}

bool TagMatcher::cancel_posted(RequestId id, Tag tag, Tag mask) {
    if (mode_ == Mode::linear) {
        for (auto it = posted_fifo_.begin(); it != posted_fifo_.end(); ++it) {
            if (it->id != id) continue;
            posted_fifo_.erase(it);
            --posted_count_;
            return true;
        }
        return false;
    }
    for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
        MaskGroup& g = groups_[gi];
        if (g.mask != mask) continue;
        const auto bucket = g.buckets.find(tag & mask);
        if (bucket == g.buckets.end()) return false;
        auto& chain = bucket->second;
        for (auto it = chain.begin(); it != chain.end(); ++it) {
            if (it->id != id) continue;
            chain.erase(it);
            if (chain.empty()) g.buckets.erase(bucket);
            if (g.buckets.empty()) {
                g = std::move(groups_.back());
                groups_.pop_back();
            }
            --posted_count_;
            return true;
        }
        return false;
    }
    return false;
}

void TagMatcher::add_unexpected(UnexpectedMsg&& msg) {
    unex_.push_back(std::move(msg));
    if (mode_ == Mode::hashed) {
        const auto it = std::prev(unex_.end());
        unex_by_tag_[it->tag].push_back(it);
    }
}

TagMatcher::UnexList::iterator TagMatcher::find_unexpected(Tag tag, Tag mask) {
    if (mode_ == Mode::hashed && mask == ~Tag{0}) {
        // Exact tag: O(1) — the bucket front is the earliest arrival of
        // this tag, and equal-tag messages are interchangeable under any
        // predicate.
        const auto b = unex_by_tag_.find(tag);
        note_probe(1);
        if (b == unex_by_tag_.end()) return unex_.end();
        assert(!b->second.empty());
        return b->second.front();
    }
    // Wildcard (or linear mode): earliest arrival wins, so scan the master
    // list in arrival order.
    std::uint64_t scanned = 0;
    for (auto it = unex_.begin(); it != unex_.end(); ++it) {
        ++scanned;
        if (tag_matches(tag, mask, it->tag)) {
            note_probe(scanned);
            return it;
        }
    }
    note_probe(scanned);
    return unex_.end();
}

void TagMatcher::erase_unexpected(UnexList::iterator it) {
    if (mode_ == Mode::hashed) {
        // Bucket-front invariant: whichever predicate selected `it`, it is
        // the earliest arrival of its tag, hence the front of its bucket.
        const auto b = unex_by_tag_.find(it->tag);
        assert(b != unex_by_tag_.end() && !b->second.empty() &&
               b->second.front() == it);
        b->second.pop_front();
        if (b->second.empty()) unex_by_tag_.erase(b);
    }
    unex_.erase(it);
}

std::optional<UnexpectedMsg> TagMatcher::take_unexpected(Tag tag, Tag mask) {
    const auto it = find_unexpected(tag, mask);
    if (it == unex_.end()) return std::nullopt;
    if (mask != ~Tag{0}) ++stats_.wildcard_hits;
    ++stats_.unexpected_matches;
    UnexpectedMsg out = std::move(*it);
    erase_unexpected(it);
    return out;
}

const UnexpectedMsg* TagMatcher::peek_unexpected(Tag tag, Tag mask) {
    const auto it = find_unexpected(tag, mask);
    return it == unex_.end() ? nullptr : &*it;
}

} // namespace mpicd::ucx
