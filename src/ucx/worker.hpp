// Worker: UCP-like tagged communication endpoint over the simulated fabric.
//
// Protocols, chosen per message exactly as the paper describes for its
// UCX-based prototype:
//  - eager   (payload <= eager_threshold): single packet; receive side pays
//    a host bounce-buffer copy (or the generic unpack callback).
//  - rendezvous (payload > threshold): RTS -> CTS handshake, then either
//      * zero-copy RDMA when the receive side exposes raw memory
//        (CONTIG / IOV descriptors) — the data never touches a bounce
//        buffer, matching UCX's get/put-based rendezvous, or
//      * a pipelined fragment protocol when either side is GENERIC
//        (pack/unpack callbacks are invoked per fragment with virtual
//        offsets, exactly the paper's Listing 4 contract).
// Messages with multiple memory regions use scatter-gather descriptors and
// pay a per-entry NIC cost (UCP_DATATYPE_IOV equivalent).
//
// Tag matching is delegated to TagMatcher (ucx/matcher.hpp): hashed
// mask-group buckets by default, the seed's linear scans under
// MPICD_TAG_MATCH=linear. See docs/MATCHING.md.
//
// Thread-safety: the protocol state machines run under one mutex, but the
// hot cross-thread paths are finely locked so rank threads driving their
// own progress() do not serialize on it:
//  - progress() itself is serialized per worker by an atomic busy flag
//    (a concurrent caller returns immediately), which also keeps packet
//    admission in arrival order;
//  - inbound CRC verification and duplicate suppression run outside the
//    main mutex against per-peer shards;
//  - completion records live in a separate registry, so is_complete()/
//    take_completion() never contend with the protocol mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/bytes.hpp"
#include "base/status.hpp"
#include "base/time.hpp"
#include "netsim/fabric.hpp"
#include "ucx/datatype.hpp"
#include "ucx/engine.hpp"
#include "ucx/matcher.hpp"
#include "ucx/wire.hpp"

namespace mpicd::ucx {

struct Completion {
    Status status = Status::success;
    Count received_len = 0; // bytes that arrived (recv side)
    Tag sender_tag = 0;
    SimTime vtime = 0.0; // virtual completion time
    // Message id of the operation (trace::next_msg_id(); on the receive
    // side, adopted from the sender's packets). Lets the caller run
    // deferred work — e.g. the p2p layer's custom unpack — under the same
    // message scope the wire events were attributed to.
    std::uint64_t msg_id = 0;
};

struct ProbeInfo {
    Tag tag = 0;
    Count total_len = 0;
    int src = -1;
};

// Per-worker protocol counters (diagnostics; used by tests to assert which
// protocol path a transfer took and exactly what the reliable-delivery
// protocol did under injected faults).
struct WorkerStats {
    std::uint64_t eager_sends = 0;
    std::uint64_t rndv_sends = 0;
    std::uint64_t rndv_rdma = 0;     // zero-copy rendezvous completions (send side)
    std::uint64_t rndv_pipeline = 0; // pipelined rendezvous completions (send side)
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t unexpected_msgs = 0; // messages queued before a recv matched
    std::uint64_t recv_completions = 0;
    // Reliable-delivery protocol counters (all zero when the fault layer is
    // inactive; see docs/FAULTS.md).
    std::uint64_t retransmits = 0;            // packets re-sent after RTO expiry
    std::uint64_t duplicates_suppressed = 0;  // already-seen link_seq discarded
    std::uint64_t corruption_detected = 0;    // CRC mismatches discarded
    std::uint64_t acks_sent = 0;
    std::uint64_t acks_received = 0;
    std::uint64_t timeouts = 0;               // ops failed with Status::timeout
};

// Handle returned by mprobe(): the matched message is removed from the
// matching queues and can only be received via imrecv().
struct MessageHandle {
    std::uint64_t id = 0;
    ProbeInfo info;
    [[nodiscard]] bool valid() const noexcept { return id != 0; }
};

class Worker {
public:
    // Registers a flight-recorder dump source for this endpoint (see
    // base/flight_recorder.hpp); the destructor unregisters it and folds
    // the protocol counters into the metrics registry.
    Worker(netsim::Fabric& fabric, int endpoint);
    ~Worker();
    Worker(const Worker&) = delete;
    Worker& operator=(const Worker&) = delete;

    [[nodiscard]] int endpoint() const noexcept { return ep_; }
    [[nodiscard]] netsim::Fabric& fabric() noexcept { return fabric_; }

    // Virtual clock access (thread-safe).
    [[nodiscard]] SimTime now();
    void advance_time(SimTime dt);

    // Nonblocking tagged send/recv. The BufferDesc is taken by value and
    // owned by the request until completion.
    RequestId tag_send(int dst, Tag tag, BufferDesc desc);
    RequestId tag_recv(Tag tag, Tag mask, BufferDesc desc);

    // Drain the endpoint inbox, advance protocol state machines and fire
    // any due reliable-delivery timers (retransmit / timeout).
    // Returns true if any packet was processed or timer fired. Serialized
    // per worker: a call that finds another thread already progressing
    // this worker returns false immediately instead of blocking, so rank
    // threads can opportunistically help peers without contending.
    bool progress();

    // True while some thread is inside progress() on this worker. Used by
    // Universe::escalate_timers to refuse a virtual-time jump when a rank
    // thread may still be holding undelivered packets.
    [[nodiscard]] bool progress_active() const noexcept {
        return progress_busy_.load(std::memory_order_acquire);
    }

    // Progress hooks: state machines (e.g. nonblocking collectives, see
    // src/p2p/coll/) that must advance whenever this endpoint is driven.
    // Hooks run at the tail of every progress() pass, after the packet
    // drain and timer pump, while the busy flag is still held — so a hook
    // observes a quiesced protocol state and is never run concurrently
    // with itself on this worker. A hook returns true when it made
    // progress (folded into progress()'s return value). Hooks must not
    // call progress() on THIS worker (the busy flag makes such a call a
    // harmless no-op) and must not assume any worker lock is held: the
    // protocol mutex is released before hooks run, so hooks may freely
    // post sends/recvs and poll completions. Returns a token for
    // remove_progress_hook(); removal is safe from any thread, including
    // from inside the hook itself.
    std::uint64_t add_progress_hook(std::function<bool()> fn);
    void remove_progress_hook(std::uint64_t token);

    // Earliest pending virtual-time timer (retransmit deadline or
    // receiver-side operation watchdog); +infinity when none. Used by
    // Universe::progress to jump virtual time when the fabric is
    // quiescent so a lost packet can never stall the simulation.
    [[nodiscard]] SimTime next_timer();
    // Move this worker's clock forward to at least `t` (timer escalation).
    void observe_time(SimTime t);

    [[nodiscard]] bool is_complete(RequestId id);
    // Retrieve (and erase) the completion record of a finished request.
    [[nodiscard]] Completion take_completion(RequestId id);

    // Cancel a pending (unmatched) receive request; returns false if the
    // request already matched a message or completed.
    bool cancel_recv(RequestId id);

    // Non-destructive probe of the unexpected queue.
    [[nodiscard]] std::optional<ProbeInfo> probe(Tag tag, Tag mask);
    // Matched probe: removes the message from matching (MPI_Mprobe model).
    [[nodiscard]] std::optional<MessageHandle> mprobe(Tag tag, Tag mask);
    // Receive a previously mprobe()d message.
    RequestId imrecv(const MessageHandle& handle, BufferDesc desc);

    // True when no requests, unexpected messages or protocol state remain.
    [[nodiscard]] bool idle();

    // Snapshot of the protocol counters.
    [[nodiscard]] WorkerStats stats();

    // Which matching engine this worker runs (fixed at construction).
    [[nodiscard]] TagMatcher::Mode match_mode() const noexcept {
        return matcher_.mode();
    }

private:
    struct Request;
    struct PendingSend;

    RequestId alloc_request_locked();
    void complete_locked(Request& rq, Status st, Count len, Tag sender_tag);

    void start_send_locked(Request& rq);
    void handle_packet_locked(netsim::Packet&& pkt);
    void handle_eager_locked(netsim::Packet&& pkt);
    void handle_rts_locked(netsim::Packet&& pkt);
    void handle_cts_locked(netsim::Packet&& pkt);
    void handle_fin_locked(netsim::Packet&& pkt);
    void handle_frag_locked(netsim::Packet&& pkt);

    // --- Reliable-delivery sublayer (active only when the fault injector
    // is active or MPICD_RELIABLE=1; see docs/FAULTS.md). ---
    // Outgoing packet wrapper: numbers, checksums and records the packet
    // for retransmission when the reliable protocol is on, then transmits.
    void send_packet_locked(netsim::Packet&& pkt, SimTime ready, Count wire_bytes,
                            Count sg_entries, int rail, bool control,
                            Request* owner);
    // Inbound filter for numbered data packets: verifies CRC and
    // suppresses duplicates against the per-peer shard — WITHOUT taking
    // the protocol mutex. Returns false when the packet was consumed.
    bool admit_data_packet(netsim::Packet& pkt);
    void handle_ack_locked(const netsim::Packet& pkt);
    void send_ack_locked(const netsim::Packet& pkt);
    // Re-ack a suppressed duplicate from admission context (no protocol
    // lock held; the ack is timed off the duplicate's arrival).
    void send_dup_ack(const netsim::Packet& pkt);
    // Fire due retransmit timers and operation watchdogs; returns true if
    // anything fired.
    bool fire_timers_locked();
    [[nodiscard]] SimTime next_timer_locked() const;
    // Fail an in-flight request (retries exhausted / watchdog expired),
    // releasing all protocol state that references it.
    void fail_request_locked(RequestId id, Status st);
    void refresh_reliable_locked();

    // Deliver a matched eager payload / RTS to a posted receive request.
    void match_eager_locked(Request& rq, Tag sender_tag, PooledBuf&& payload,
                            SimTime arrival);
    void match_rts_locked(Request& rq, Tag sender_tag, int src, Count total_len,
                          std::uint64_t sender_op, SimTime arrival);

    Request* find_posted_locked(Tag tag);
    void send_cts_locked(Request& rq, int src, std::uint64_t sender_op);
    // Record how long an unexpected message waited for its receive.
    void note_unexpected_dwell_locked(const UnexpectedMsg& u);

    // Flight-recorder dump of this worker's protocol state (in-flight
    // request table, retransmit queue, per-peer dedup/rendezvous state).
    // Caller must hold (or be unable to ever share) mutex_.
    void dump_state_locked(std::FILE* out) const;

    netsim::Fabric& fabric_;
    const netsim::WireParams& params_;
    int ep_;

    std::mutex mutex_;
    netsim::VirtualClock clock_;
    RequestId next_id_ = 1;
    // Rendezvous protocol op ids and mprobe handles (worker-local; the
    // process-unique *message* ids come from trace::next_msg_id()).
    std::uint64_t next_op_id_ = 1;

    std::unordered_map<RequestId, std::unique_ptr<Request>> requests_;
    // Posted-but-unmatched receives and unexpected messages.
    TagMatcher matcher_;
    // Matched-by-mprobe messages awaiting imrecv.
    std::unordered_map<std::uint64_t, UnexpectedMsg> mprobed_;
    // Sender-side rendezvous operations waiting for CTS, by sender op id.
    std::unordered_map<std::uint64_t, RequestId> rndv_sends_;
    // Receiver-side operations waiting for FIN/fragments, by receiver op id.
    std::unordered_map<std::uint64_t, RequestId> rndv_recvs_;

    // --- Reliable-delivery state. ---
    // Latched on: once the fabric reports a fault layer / forced
    // reliability, this worker numbers and acknowledges packets for the
    // rest of its lifetime (reliability never switches off mid-run).
    bool reliable_ = false;
    std::uint64_t next_link_seq_ = 1;
    // Unacknowledged outgoing packets by link_seq: the retransmit record
    // and its backoff schedule in virtual time. The payload inside `pkt`
    // is a PooledBuf, so with the pool enabled this record *shares* the
    // transmitted packet's slab instead of duplicating the bytes.
    struct PendingTx {
        netsim::Packet pkt;
        bool control = false;
        Count wire_bytes = 0;
        Count sg_entries = 1;
        int rail = 0;
        int retries = 0;
        SimTime rto = 0.0;        // current backoff interval
        SimTime next_retry = 0.0; // virtual deadline for the next attempt
        RequestId owner = kInvalidRequest;
    };
    std::unordered_map<std::uint64_t, PendingTx> pending_tx_;

    // Per-peer admission shard: the set of delivered link_seq values
    // (duplicate suppression), guarded by its own mutex so inbound
    // filtering never touches the protocol mutex. Leaf lock: never held
    // while acquiring any other lock. A deque so elements never move.
    struct PeerShard {
        mutable std::mutex mu;
        std::unordered_set<std::uint64_t> seen;
    };
    std::deque<PeerShard> shards_;
    // Admission-context counters (outside the protocol mutex); folded into
    // stats() snapshots.
    std::atomic<std::uint64_t> adm_dups_{0};
    std::atomic<std::uint64_t> adm_corruption_{0};
    std::atomic<std::uint64_t> adm_acks_sent_{0};

    // Completion registry: done requests by id. comp_mutex_ is only ever
    // acquired after (or without) mutex_, never before it.
    std::mutex comp_mutex_;
    std::unordered_map<RequestId, Completion> completed_;

    // progress() serialization (see above).
    std::atomic<bool> progress_busy_{false};

    // Progress hooks (see add_progress_hook). The runner iterates a
    // snapshot of shared_ptrs taken under hooks_mutex_, so a hook being
    // removed concurrently still finishes its in-flight invocation and a
    // hook may remove itself. hooks_present_ keeps the common no-hooks
    // path to a single relaxed load. Leaf state: hooks_mutex_ is never
    // held while running a hook or taking any other worker lock.
    bool run_hooks();
    std::mutex hooks_mutex_;
    std::vector<std::pair<std::uint64_t, std::shared_ptr<std::function<bool()>>>>
        hooks_;
    std::uint64_t next_hook_token_ = 1;
    std::atomic<bool> hooks_present_{false};

    WorkerStats stats_;
    std::uint64_t flight_token_ = 0; // flight-recorder source registration
};

} // namespace mpicd::ucx
