// Wire packet kinds of the ucx protocol layer.
//
// Public (rather than private to worker.cpp) so that the fault-injection
// test harness can schedule faults against specific protocol packets
// ("corrupt byte 7 of the RTS", "drop the 2nd FRAG on link 0->1") via
// netsim::ScheduledFault::kind_filter.
#pragma once

#include <cstdint>

namespace mpicd::ucx::wire {

inline constexpr std::uint16_t kEager = 1; // tag + full payload, one packet
inline constexpr std::uint16_t kRts = 2;   // rendezvous request-to-send
inline constexpr std::uint16_t kCts = 3;   // rendezvous clear-to-send
inline constexpr std::uint16_t kFin = 4;   // rendezvous completion notice
inline constexpr std::uint16_t kFrag = 5;  // pipelined rendezvous fragment
inline constexpr std::uint16_t kAck = 6;   // reliable-delivery acknowledgment

} // namespace mpicd::ucx::wire
