// mpi4py-like Python-object transfer strategies (paper §V-B).
//
// Three ways to move a PyValue between ranks, exactly the series of
// Figs. 8–9:
//  - basic:     in-band pickle. One message holding the full serialized
//               stream (metadata + all payload bytes copied inline).
//  - oob_multi: protocol-5 out-of-band pickle over multiple MPI messages:
//               header stream, then a lengths message, then one message
//               per out-of-band buffer (what mpi4py does today; shares the
//               tag space across the pieces, hence the paper's threading
//               concern).
//  - oob_cdt:   out-of-band pickle through the custom datatype engine:
//               a small header message (stream + region lengths — the
//               workaround of paper §VI for unknown receive sizes), then a
//               single custom-datatype message whose memory regions are
//               the out-of-band buffers (zero-copy, one matched pair).
//
// The receive side always allocates the object graph from the header
// before payload data arrives (mpi4py/pickle semantics); those allocations
// are the reason none of the methods reaches the raw roofline.
#pragma once

#include "p2p/communicator.hpp"
#include "pysim/pickle.hpp"

namespace mpicd::pysim {

enum class PyXfer { basic, oob_multi, oob_cdt };

[[nodiscard]] constexpr const char* to_cstring(PyXfer m) noexcept {
    switch (m) {
        case PyXfer::basic: return "pickle-basic";
        case PyXfer::oob_multi: return "pickle-oob";
        case PyXfer::oob_cdt: return "pickle-oob-cdt";
    }
    return "?";
}

struct PyXferOptions {
    PyXfer method = PyXfer::basic;
    Count oob_threshold = 4096;
};

// Blocking send/recv of a Python-like object. Pickle work (dumps / loads /
// receive-side allocation) is measured and charged to the rank's virtual
// clock; message transfer costs come from the simulated fabric.
[[nodiscard]] Status send_pyobj(p2p::Communicator& comm, const PyValue& value, int dst,
                                int tag, const PyXferOptions& opts);
[[nodiscard]] Status recv_pyobj(p2p::Communicator& comm, PyValue* out, int src,
                                int tag, const PyXferOptions& opts);

// A dynamic list of raw memory regions sent/received as one custom-datatype
// message — the lowering used by oob_cdt (and reusable elsewhere).
struct RegionList {
    std::vector<IovEntry> regions;
};

[[nodiscard]] const core::CustomDatatype& region_list_datatype();

} // namespace mpicd::pysim
