#include "pysim/pickle.hpp"

#include <cstring>

#include "serial/archive.hpp"

namespace mpicd::pysim {

namespace {

enum class Op : std::uint8_t {
    none = 0,
    bool_ = 1,
    int_ = 2,
    float_ = 3,
    str = 4,
    list = 5,
    dict = 6,
    ndarray = 7,
};

Status dump_value(const PyValue& v, serial::OArchive& ar,
                  std::vector<PickleBuffer>* oob) {
    if (v.is_none()) {
        ar.put_u8(static_cast<std::uint8_t>(Op::none));
        return Status::success;
    }
    if (v.is_bool()) {
        ar.put_u8(static_cast<std::uint8_t>(Op::bool_));
        ar.put_u8(v.as_bool() ? 1 : 0);
        return Status::success;
    }
    if (v.is_int()) {
        ar.put_u8(static_cast<std::uint8_t>(Op::int_));
        ar.put_scalar(v.as_int());
        return Status::success;
    }
    if (v.is_float()) {
        ar.put_u8(static_cast<std::uint8_t>(Op::float_));
        ar.put_scalar(v.as_float());
        return Status::success;
    }
    if (v.is_str()) {
        ar.put_u8(static_cast<std::uint8_t>(Op::str));
        ar.put_string(v.as_str());
        return Status::success;
    }
    if (v.is_list()) {
        ar.put_u8(static_cast<std::uint8_t>(Op::list));
        ar.put_varint(v.as_list().size());
        for (const auto& item : v.as_list()) MPICD_RETURN_IF_ERROR(dump_value(item, ar, oob));
        return Status::success;
    }
    if (v.is_dict()) {
        ar.put_u8(static_cast<std::uint8_t>(Op::dict));
        ar.put_varint(v.as_dict().size());
        for (const auto& [key, item] : v.as_dict()) {
            ar.put_string(key);
            MPICD_RETURN_IF_ERROR(dump_value(item, ar, oob));
        }
        return Status::success;
    }
    if (v.is_ndarray()) {
        const auto& a = v.as_ndarray();
        // The ndarray metadata header (dtype, ndim, shape) — the ~120-byte
        // pickle header the paper mentions in §V-B.
        ar.put_u8(static_cast<std::uint8_t>(Op::ndarray));
        ar.put_u8(static_cast<std::uint8_t>(a.dtype()));
        ar.put_varint(a.shape().size());
        for (const Count s : a.shape()) ar.put_varint(static_cast<std::uint64_t>(s));
        ar.put_blob(ConstBytes(a.data(), static_cast<std::size_t>(a.nbytes())));
        if (oob != nullptr) {
            // Track ownership for any blob the archive exported out-of-band.
            while (oob->size() < ar.oob().size()) {
                const auto& region = ar.oob()[oob->size()];
                oob->push_back({a.buffer(), static_cast<const std::byte*>(region.base),
                                region.len});
            }
        }
        return Status::success;
    }
    return Status::err_serialize;
}

Status load_value(serial::IArchive& ar, PyValue* out, std::vector<IovEntry>* fill);

Status load_ndarray(serial::IArchive& ar, PyValue* out, std::vector<IovEntry>* fill) {
    std::uint8_t dtype_raw = 0;
    MPICD_RETURN_IF_ERROR(ar.get_u8(&dtype_raw));
    if (dtype_raw > static_cast<std::uint8_t>(DType::f64)) return Status::err_serialize;
    std::uint64_t ndim = 0;
    MPICD_RETURN_IF_ERROR(ar.get_varint(&ndim));
    if (ndim > 32) return Status::err_serialize;
    std::vector<Count> shape(static_cast<std::size_t>(ndim));
    for (auto& s : shape) {
        std::uint64_t v = 0;
        MPICD_RETURN_IF_ERROR(ar.get_varint(&v));
        s = static_cast<Count>(v);
    }
    // Receive-side allocation happens here (NdArray constructor) — the
    // cost the paper identifies as keeping out-of-band methods below the
    // roofline.
    NdArray a(static_cast<DType>(dtype_raw), std::move(shape));

    // Blob: inline (copy now) or out-of-band (register a fill target).
    // We parse the blob descriptor by hand because out-of-band regions are
    // not available yet at this phase.
    std::uint8_t tag = 0;
    MPICD_RETURN_IF_ERROR(ar.get_u8(&tag));
    if (tag == 0) {
        std::uint64_t len = 0;
        MPICD_RETURN_IF_ERROR(ar.get_varint(&len));
        if (static_cast<Count>(len) != a.nbytes()) return Status::err_serialize;
        MPICD_RETURN_IF_ERROR(
            ar.get_raw(MutBytes(a.data(), static_cast<std::size_t>(len))));
    } else if (tag == 1) {
        std::uint64_t idx = 0, len = 0;
        MPICD_RETURN_IF_ERROR(ar.get_varint(&idx));
        MPICD_RETURN_IF_ERROR(ar.get_varint(&len));
        if (static_cast<Count>(len) != a.nbytes()) return Status::err_serialize;
        if (fill == nullptr) return Status::err_serialize;
        if (idx != fill->size()) return Status::err_serialize; // in-order indices
        fill->push_back({a.data(), a.nbytes()});
    } else {
        return Status::err_serialize;
    }
    *out = PyValue(std::move(a));
    return Status::success;
}

Status load_value(serial::IArchive& ar, PyValue* out, std::vector<IovEntry>* fill) {
    std::uint8_t op_raw = 0;
    MPICD_RETURN_IF_ERROR(ar.get_u8(&op_raw));
    switch (static_cast<Op>(op_raw)) {
        case Op::none:
            *out = PyValue();
            return Status::success;
        case Op::bool_: {
            std::uint8_t b = 0;
            MPICD_RETURN_IF_ERROR(ar.get_u8(&b));
            *out = PyValue(b != 0);
            return Status::success;
        }
        case Op::int_: {
            std::int64_t v = 0;
            MPICD_RETURN_IF_ERROR(ar.get_scalar(&v));
            *out = PyValue(v);
            return Status::success;
        }
        case Op::float_: {
            double v = 0;
            MPICD_RETURN_IF_ERROR(ar.get_scalar(&v));
            *out = PyValue(v);
            return Status::success;
        }
        case Op::str: {
            std::string s;
            MPICD_RETURN_IF_ERROR(ar.get_string(&s));
            *out = PyValue(std::move(s));
            return Status::success;
        }
        case Op::list: {
            std::uint64_t n = 0;
            MPICD_RETURN_IF_ERROR(ar.get_varint(&n));
            PyList items(static_cast<std::size_t>(n));
            for (auto& item : items) MPICD_RETURN_IF_ERROR(load_value(ar, &item, fill));
            *out = PyValue(std::move(items));
            return Status::success;
        }
        case Op::dict: {
            std::uint64_t n = 0;
            MPICD_RETURN_IF_ERROR(ar.get_varint(&n));
            PyDict items;
            items.reserve(static_cast<std::size_t>(n));
            for (std::uint64_t i = 0; i < n; ++i) {
                std::string key;
                MPICD_RETURN_IF_ERROR(ar.get_string(&key));
                PyValue item;
                MPICD_RETURN_IF_ERROR(load_value(ar, &item, fill));
                items.emplace_back(std::move(key), std::move(item));
            }
            *out = PyValue(std::move(items));
            return Status::success;
        }
        case Op::ndarray:
            return load_ndarray(ar, out, fill);
    }
    return Status::err_serialize;
}

} // namespace

Status dumps(const PyValue& value, const DumpOptions& opts, Pickled* out) {
    if (out == nullptr) return Status::err_arg;
    serial::OobPolicy policy;
    policy.enabled = opts.out_of_band;
    policy.threshold = opts.oob_threshold;
    serial::OArchive ar(policy);
    out->oob.clear();
    MPICD_RETURN_IF_ERROR(dump_value(value, ar, &out->oob));
    out->stream = ar.take_stream();
    return Status::success;
}

Status loads_alloc(ConstBytes stream, PyValue* out, std::vector<IovEntry>* fill) {
    if (out == nullptr) return Status::err_arg;
    serial::IArchive ar(stream);
    MPICD_RETURN_IF_ERROR(load_value(ar, out, fill));
    if (!ar.exhausted()) return Status::err_serialize;
    return Status::success;
}

Status loads(ConstBytes stream, PyValue* out) {
    std::vector<IovEntry> fill;
    MPICD_RETURN_IF_ERROR(loads_alloc(stream, out, &fill));
    return fill.empty() ? Status::success : Status::err_serialize;
}

} // namespace mpicd::pysim
