#include "pysim/mpi4py_sim.hpp"

#include <cstring>

#include "core/traits.hpp"
#include "serial/archive.hpp"

namespace mpicd::core {

// RegionList custom serialization: nothing packed in-band, every region
// exposed to the transport as a scatter-gather entry.
template <>
struct CustomSerialize<pysim::RegionList> {
    struct State {};
    static constexpr bool inorder = false;

    static Status init(const pysim::RegionList*, Count, State&) {
        return Status::success;
    }
    static Status packed_size(State&, const pysim::RegionList*, Count, Count* size) {
        *size = 0;
        return Status::success;
    }
    static Status pack(State&, const pysim::RegionList*, Count, Count, void*, Count,
                       Count*) {
        return Status::err_internal; // no in-band portion
    }
    static Status unpack(State&, pysim::RegionList*, Count, Count, const void*, Count) {
        return Status::err_internal;
    }
    static Status region_count(State&, pysim::RegionList* buf, Count count, Count* n) {
        Count total = 0;
        for (Count i = 0; i < count; ++i)
            total += static_cast<Count>(buf[i].regions.size());
        *n = total;
        return Status::success;
    }
    static Status regions(State&, pysim::RegionList* buf, Count count, Count n,
                          void** bases, Count* lens) {
        Count k = 0;
        for (Count i = 0; i < count; ++i) {
            for (const auto& r : buf[i].regions) {
                if (k >= n) return Status::err_region;
                bases[k] = r.base;
                lens[k] = r.len;
                ++k;
            }
        }
        return k == n ? Status::success : Status::err_region;
    }
};

} // namespace mpicd::core

namespace mpicd::pysim {

const core::CustomDatatype& region_list_datatype() {
    return core::custom_datatype_of<RegionList>();
}

namespace {

using p2p::Communicator;

// Header message for the out-of-band methods: the pickle stream plus the
// region lengths (paper §VI: the receiver cannot otherwise know them).
ByteVec encode_oob_header(const Pickled& p) {
    serial::OArchive ar;
    ar.put_varint(p.stream.size());
    ar.put_varint(p.oob.size());
    for (const auto& b : p.oob) ar.put_varint(static_cast<std::uint64_t>(b.len));
    ByteVec out = ar.take_stream();
    append_bytes(out, p.stream);
    return out;
}

Status decode_oob_header(ConstBytes header, ConstBytes* stream,
                         std::vector<Count>* lens) {
    serial::IArchive ar(header);
    std::uint64_t stream_len = 0, n = 0;
    MPICD_RETURN_IF_ERROR(ar.get_varint(&stream_len));
    MPICD_RETURN_IF_ERROR(ar.get_varint(&n));
    lens->resize(static_cast<std::size_t>(n));
    for (auto& l : *lens) {
        std::uint64_t v = 0;
        MPICD_RETURN_IF_ERROR(ar.get_varint(&v));
        l = static_cast<Count>(v);
    }
    if (ar.position() + stream_len != header.size()) return Status::err_serialize;
    *stream = header.subspan(ar.position(), static_cast<std::size_t>(stream_len));
    return Status::success;
}

Status check(const p2p::MsgStatus& st) { return st.status; }

} // namespace

Status send_pyobj(Communicator& comm, const PyValue& value, int dst, int tag,
                  const PyXferOptions& opts) {
    Pickled pickled;
    {
        SimTime cost = 0.0;
        DumpOptions dopts;
        dopts.out_of_band = opts.method != PyXfer::basic;
        dopts.oob_threshold = opts.oob_threshold;
        {
            const ScopedMeasure measure(cost);
            MPICD_RETURN_IF_ERROR(dumps(value, dopts, &pickled));
        }
        comm.advance_time(cost);
    }

    switch (opts.method) {
        case PyXfer::basic:
            return check(comm.send_bytes(pickled.stream.data(),
                                         static_cast<Count>(pickled.stream.size()), dst,
                                         tag));
        case PyXfer::oob_multi: {
            // Header, then lengths, then one message per buffer — all on the
            // same (communicator, tag) pair, as mpi4py does.
            MPICD_RETURN_IF_ERROR(check(comm.send_bytes(
                pickled.stream.data(), static_cast<Count>(pickled.stream.size()), dst,
                tag)));
            std::vector<std::uint64_t> lens(pickled.oob.size());
            for (std::size_t i = 0; i < pickled.oob.size(); ++i)
                lens[i] = static_cast<std::uint64_t>(pickled.oob[i].len);
            MPICD_RETURN_IF_ERROR(check(comm.send_bytes(
                lens.data(), static_cast<Count>(lens.size() * sizeof(std::uint64_t)),
                dst, tag)));
            for (const auto& b : pickled.oob) {
                MPICD_RETURN_IF_ERROR(check(comm.send_bytes(b.data, b.len, dst, tag)));
            }
            return Status::success;
        }
        case PyXfer::oob_cdt: {
            const ByteVec header = encode_oob_header(pickled);
            MPICD_RETURN_IF_ERROR(check(comm.send_bytes(
                header.data(), static_cast<Count>(header.size()), dst, tag)));
            RegionList list;
            list.regions.reserve(pickled.oob.size());
            for (const auto& b : pickled.oob) {
                list.regions.push_back(
                    {const_cast<std::byte*>(b.data), b.len});
            }
            if (list.regions.empty()) return Status::success;
            return check(comm.send_custom(&list, 1, region_list_datatype(), dst, tag));
        }
    }
    return Status::err_arg;
}

Status recv_pyobj(Communicator& comm, PyValue* out, int src, int tag,
                  const PyXferOptions& opts) {
    if (out == nullptr) return Status::err_arg;

    // All methods start with a matched probe of the header/stream message —
    // the mpi4py MPI_Mprobe pattern for unknown serialized sizes (§II-C).
    p2p::Message msg = comm.mprobe(src, tag);
    ByteVec header(static_cast<std::size_t>(msg.info.bytes));
    MPICD_RETURN_IF_ERROR(
        check(comm.imrecv(msg, header.data(), msg.info.bytes).wait()));
    const int actual_src = msg.info.source;

    switch (opts.method) {
        case PyXfer::basic: {
            SimTime cost = 0.0;
            Status st = Status::success;
            {
                const ScopedMeasure measure(cost);
                st = loads(header, out);
            }
            comm.advance_time(cost);
            return st;
        }
        case PyXfer::oob_multi: {
            std::vector<IovEntry> fill;
            {
                SimTime cost = 0.0;
                Status st = Status::success;
                {
                    const ScopedMeasure measure(cost);
                    st = loads_alloc(header, out, &fill);
                }
                comm.advance_time(cost);
                MPICD_RETURN_IF_ERROR(st);
            }
            std::vector<std::uint64_t> lens(fill.size());
            MPICD_RETURN_IF_ERROR(check(comm.recv_bytes(
                lens.data(), static_cast<Count>(lens.size() * sizeof(std::uint64_t)),
                actual_src, tag)));
            for (std::size_t i = 0; i < fill.size(); ++i) {
                if (static_cast<Count>(lens[i]) != fill[i].len)
                    return Status::err_serialize;
                MPICD_RETURN_IF_ERROR(check(
                    comm.recv_bytes(fill[i].base, fill[i].len, actual_src, tag)));
            }
            return Status::success;
        }
        case PyXfer::oob_cdt: {
            ConstBytes stream;
            std::vector<Count> lens;
            MPICD_RETURN_IF_ERROR(decode_oob_header(header, &stream, &lens));
            std::vector<IovEntry> fill;
            {
                SimTime cost = 0.0;
                Status st = Status::success;
                {
                    const ScopedMeasure measure(cost);
                    st = loads_alloc(stream, out, &fill);
                }
                comm.advance_time(cost);
                MPICD_RETURN_IF_ERROR(st);
            }
            if (fill.size() != lens.size()) return Status::err_serialize;
            for (std::size_t i = 0; i < fill.size(); ++i) {
                if (lens[i] != fill[i].len) return Status::err_serialize;
            }
            if (fill.empty()) return Status::success;
            RegionList list;
            list.regions = std::move(fill);
            return check(
                comm.recv_custom(&list, 1, region_list_datatype(), actual_src, tag));
        }
    }
    return Status::err_arg;
}

} // namespace mpicd::pysim
