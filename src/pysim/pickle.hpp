// Pickle-like serializer for PyValue with protocol-5-style out-of-band
// buffers (PEP 574 analog; paper §II-C).
//
// dumps() produces an in-band byte stream; with out-of-band enabled,
// ndarray payloads of at least `threshold` bytes are *not* copied into the
// stream — instead a PickleBuffer referencing the array's shared buffer is
// appended to the buffer list (zero-copy), and the stream records only the
// small metadata header (dtype, shape, byte order of this machine).
//
// Deserialization is two-phase to mirror mpi4py's receive path:
//   1. loads_alloc() parses the stream, allocates every ndarray buffer
//      (the receive-side allocations the paper calls out as the reason
//      out-of-band methods cannot reach the roofline), fills inline
//      payloads, and returns fill targets for the out-of-band ones;
//   2. the caller receives the out-of-band data directly into those
//      targets — no further copies.
#pragma once

#include "base/status.hpp"
#include "pysim/pyvalue.hpp"

namespace mpicd::pysim {

// Zero-copy reference to an out-of-band payload (PEP 574 PickleBuffer).
struct PickleBuffer {
    std::shared_ptr<ByteVec> owner; // keeps the ndarray buffer alive
    const std::byte* data = nullptr;
    Count len = 0;
};

struct Pickled {
    ByteVec stream;                  // in-band metadata + inline payloads
    std::vector<PickleBuffer> oob;   // out-of-band payloads, in order
};

struct DumpOptions {
    bool out_of_band = false;
    Count oob_threshold = 4096; // payloads >= this go out-of-band
};

[[nodiscard]] Status dumps(const PyValue& value, const DumpOptions& opts, Pickled* out);

// Phase 1 of deserialization: rebuild the object graph, allocating all
// ndarray buffers. Inline payloads are copied from the stream; for each
// out-of-band payload (in stream order) a fill target pointing into the
// freshly-allocated buffer is appended to *fill.
[[nodiscard]] Status loads_alloc(ConstBytes stream, PyValue* out,
                                 std::vector<IovEntry>* fill);

// Convenience for fully in-band streams.
[[nodiscard]] Status loads(ConstBytes stream, PyValue* out);

} // namespace mpicd::pysim
