// PyValue: a dynamic, Python-like object model.
//
// The paper's §V-B experiments communicate Python objects (NumPy arrays
// and composite user objects) through mpi4py + pickle. This substrate
// provides the equivalent value model in C++: none / bool / int / float /
// str / list / dict plus NdArray, a shape+dtype view over a shared byte
// buffer (NumPy analog with zero-copy buffer sharing).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "base/bytes.hpp"

namespace mpicd::pysim {

enum class DType : std::uint8_t { u8, i32, i64, f32, f64 };

[[nodiscard]] constexpr std::size_t dtype_size(DType d) noexcept {
    switch (d) {
        case DType::u8: return 1;
        case DType::i32:
        case DType::f32: return 4;
        case DType::i64:
        case DType::f64: return 8;
    }
    return 0;
}

[[nodiscard]] constexpr const char* dtype_name(DType d) noexcept {
    switch (d) {
        case DType::u8: return "uint8";
        case DType::i32: return "int32";
        case DType::i64: return "int64";
        case DType::f32: return "float32";
        case DType::f64: return "float64";
    }
    return "?";
}

// NumPy-like n-dimensional array over a shared, contiguous buffer.
class NdArray {
public:
    NdArray() = default;
    NdArray(DType dtype, std::vector<Count> shape);

    [[nodiscard]] static NdArray zeros(DType dtype, std::vector<Count> shape);
    // Fill with a deterministic pattern derived from `seed` (tests/benches).
    [[nodiscard]] static NdArray pattern(DType dtype, std::vector<Count> shape,
                                         std::uint32_t seed);

    [[nodiscard]] DType dtype() const noexcept { return dtype_; }
    [[nodiscard]] const std::vector<Count>& shape() const noexcept { return shape_; }
    [[nodiscard]] Count elements() const noexcept;
    [[nodiscard]] Count nbytes() const noexcept {
        return elements() * static_cast<Count>(dtype_size(dtype_));
    }
    [[nodiscard]] std::byte* data() noexcept {
        return buffer_ ? buffer_->data() : nullptr;
    }
    [[nodiscard]] const std::byte* data() const noexcept {
        return buffer_ ? buffer_->data() : nullptr;
    }
    [[nodiscard]] const std::shared_ptr<ByteVec>& buffer() const noexcept {
        return buffer_;
    }

    [[nodiscard]] bool operator==(const NdArray& other) const;

private:
    DType dtype_ = DType::u8;
    std::vector<Count> shape_;
    std::shared_ptr<ByteVec> buffer_;
};

class PyValue;
using PyList = std::vector<PyValue>;
// Insertion-ordered mapping (Python dicts preserve insertion order).
using PyDict = std::vector<std::pair<std::string, PyValue>>;

class PyValue {
public:
    PyValue() = default; // None
    PyValue(bool v) : v_(v) {}
    PyValue(std::int64_t v) : v_(v) {}
    PyValue(int v) : v_(static_cast<std::int64_t>(v)) {}
    PyValue(double v) : v_(v) {}
    PyValue(std::string v) : v_(std::move(v)) {}
    PyValue(const char* v) : v_(std::string(v)) {}
    PyValue(PyList v) : v_(std::move(v)) {}
    PyValue(PyDict v) : v_(std::move(v)) {}
    PyValue(NdArray v) : v_(std::move(v)) {}

    [[nodiscard]] bool is_none() const noexcept {
        return std::holds_alternative<std::monostate>(v_);
    }
    [[nodiscard]] bool is_bool() const noexcept {
        return std::holds_alternative<bool>(v_);
    }
    [[nodiscard]] bool is_int() const noexcept {
        return std::holds_alternative<std::int64_t>(v_);
    }
    [[nodiscard]] bool is_float() const noexcept {
        return std::holds_alternative<double>(v_);
    }
    [[nodiscard]] bool is_str() const noexcept {
        return std::holds_alternative<std::string>(v_);
    }
    [[nodiscard]] bool is_list() const noexcept {
        return std::holds_alternative<PyList>(v_);
    }
    [[nodiscard]] bool is_dict() const noexcept {
        return std::holds_alternative<PyDict>(v_);
    }
    [[nodiscard]] bool is_ndarray() const noexcept {
        return std::holds_alternative<NdArray>(v_);
    }

    [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
    [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
    [[nodiscard]] double as_float() const { return std::get<double>(v_); }
    [[nodiscard]] const std::string& as_str() const { return std::get<std::string>(v_); }
    [[nodiscard]] const PyList& as_list() const { return std::get<PyList>(v_); }
    [[nodiscard]] PyList& as_list() { return std::get<PyList>(v_); }
    [[nodiscard]] const PyDict& as_dict() const { return std::get<PyDict>(v_); }
    [[nodiscard]] PyDict& as_dict() { return std::get<PyDict>(v_); }
    [[nodiscard]] const NdArray& as_ndarray() const { return std::get<NdArray>(v_); }
    [[nodiscard]] NdArray& as_ndarray() { return std::get<NdArray>(v_); }

    // Deep structural equality (ndarrays compare contents).
    [[nodiscard]] bool operator==(const PyValue& other) const;

    // Total bytes of ndarray payloads contained anywhere in this value.
    [[nodiscard]] Count payload_bytes() const;

    // Python-style repr, e.g. {'x': 1, 'arr': ndarray(float64, [4, 4])}.
    [[nodiscard]] std::string repr() const;

private:
    std::variant<std::monostate, bool, std::int64_t, double, std::string, PyList,
                 PyDict, NdArray>
        v_;
};

} // namespace mpicd::pysim
