#include "pysim/pyvalue.hpp"

#include <cstring>
#include <sstream>

namespace mpicd::pysim {

NdArray::NdArray(DType dtype, std::vector<Count> shape)
    : dtype_(dtype), shape_(std::move(shape)) {
    buffer_ = std::make_shared<ByteVec>(static_cast<std::size_t>(nbytes()));
}

NdArray NdArray::zeros(DType dtype, std::vector<Count> shape) {
    return NdArray(dtype, std::move(shape));
}

NdArray NdArray::pattern(DType dtype, std::vector<Count> shape, std::uint32_t seed) {
    NdArray a(dtype, std::move(shape));
    // Simple xorshift pattern, independent of dtype width.
    std::uint32_t x = seed * 2654435761u + 1u;
    auto* p = reinterpret_cast<std::uint8_t*>(a.data());
    const std::size_t n = static_cast<std::size_t>(a.nbytes());
    for (std::size_t i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        p[i] = static_cast<std::uint8_t>(x);
    }
    return a;
}

Count NdArray::elements() const noexcept {
    Count n = 1;
    for (const Count s : shape_) n *= s;
    return shape_.empty() ? 0 : n;
}

bool NdArray::operator==(const NdArray& other) const {
    if (dtype_ != other.dtype_ || shape_ != other.shape_) return false;
    const Count n = nbytes();
    if (n != other.nbytes()) return false;
    if (n == 0) return true;
    return std::memcmp(data(), other.data(), static_cast<std::size_t>(n)) == 0;
}

bool PyValue::operator==(const PyValue& other) const { return v_ == other.v_; }

namespace {

void repr_into(const PyValue& v, std::ostringstream& os) {
    if (v.is_none()) {
        os << "None";
    } else if (v.is_bool()) {
        os << (v.as_bool() ? "True" : "False");
    } else if (v.is_int()) {
        os << v.as_int();
    } else if (v.is_float()) {
        os << v.as_float();
    } else if (v.is_str()) {
        os << '\'' << v.as_str() << '\'';
    } else if (v.is_list()) {
        os << '[';
        bool first = true;
        for (const auto& item : v.as_list()) {
            if (!first) os << ", ";
            first = false;
            repr_into(item, os);
        }
        os << ']';
    } else if (v.is_dict()) {
        os << '{';
        bool first = true;
        for (const auto& [k, item] : v.as_dict()) {
            if (!first) os << ", ";
            first = false;
            os << '\'' << k << "': ";
            repr_into(item, os);
        }
        os << '}';
    } else if (v.is_ndarray()) {
        const auto& a = v.as_ndarray();
        os << "ndarray(" << dtype_name(a.dtype()) << ", [";
        for (std::size_t d = 0; d < a.shape().size(); ++d) {
            if (d > 0) os << ", ";
            os << a.shape()[d];
        }
        os << "])";
    }
}

} // namespace

std::string PyValue::repr() const {
    std::ostringstream os;
    repr_into(*this, os);
    return os.str();
}

Count PyValue::payload_bytes() const {
    if (is_ndarray()) return as_ndarray().nbytes();
    Count total = 0;
    if (is_list()) {
        for (const auto& v : as_list()) total += v.payload_bytes();
    } else if (is_dict()) {
        for (const auto& [k, v] : as_dict()) total += v.payload_bytes();
    }
    return total;
}

} // namespace mpicd::pysim
