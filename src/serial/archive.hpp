// Binary archive serializer with out-of-band buffer support.
//
// This is the C++ "serialization library" substrate (the role Pickle /
// Serde / Boost.Serialization play in the paper): values serialize into a
// contiguous in-band stream, and large blobs can be exported *out-of-band*
// as zero-copy memory regions — exactly the capability the custom datatype
// API is designed to exploit (PEP 574-style buffers, paper §II-C).
//
// Wire format (in-band stream):
//   scalars     little-endian fixed width
//   varints     LEB128 unsigned
//   string/vec  varint length + payload
//   blob        tag byte: 0 = inline (varint len + bytes),
//                         1 = out-of-band (varint region index + varint len)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "base/bytes.hpp"
#include "base/status.hpp"

namespace mpicd::serial {

// Policy controlling when blobs are exported out-of-band.
struct OobPolicy {
    bool enabled = false;
    // Blobs of at least this many bytes go out-of-band.
    Count threshold = 4096;
};

class OArchive {
public:
    explicit OArchive(OobPolicy policy = {}) : policy_(policy) {}

    [[nodiscard]] const ByteVec& stream() const noexcept { return stream_; }
    [[nodiscard]] ByteVec take_stream() noexcept { return std::move(stream_); }
    // Zero-copy out-of-band regions, in export order. Pointers alias the
    // caller's data and must outlive any use of the archive's output.
    [[nodiscard]] const std::vector<ConstIovEntry>& oob() const noexcept {
        return oob_;
    }

    void put_u8(std::uint8_t v) { stream_.push_back(static_cast<std::byte>(v)); }
    void put_varint(std::uint64_t v);
    template <typename T>
        requires std::is_trivially_copyable_v<T>
    void put_scalar(const T& v) {
        append_bytes(stream_, object_bytes(v));
    }
    void put_string(const std::string& s);
    // A blob: inline or out-of-band per policy.
    void put_blob(ConstBytes data);

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    void put_vector(const std::vector<T>& v) {
        put_varint(v.size());
        append_bytes(stream_, as_bytes_of(v.data(), v.size() * sizeof(T)));
    }

private:
    OobPolicy policy_;
    ByteVec stream_;
    std::vector<ConstIovEntry> oob_;
};

class IArchive {
public:
    // `oob` supplies the out-of-band regions referenced by the stream
    // (already received into their destinations, or staged buffers).
    explicit IArchive(ConstBytes stream, std::span<const ConstIovEntry> oob = {})
        : stream_(stream), oob_(oob) {}

    [[nodiscard]] bool exhausted() const noexcept { return pos_ == stream_.size(); }
    [[nodiscard]] std::size_t position() const noexcept { return pos_; }

    [[nodiscard]] Status get_u8(std::uint8_t* v);
    [[nodiscard]] Status get_varint(std::uint64_t* v);
    template <typename T>
        requires std::is_trivially_copyable_v<T>
    [[nodiscard]] Status get_scalar(T* v) {
        if (pos_ + sizeof(T) > stream_.size()) return Status::err_serialize;
        std::memcpy(v, stream_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return Status::success;
    }
    [[nodiscard]] Status get_string(std::string* s);
    // Bulk copy of raw stream bytes into `dst`.
    [[nodiscard]] Status get_raw(MutBytes dst);
    // Reads a blob descriptor; returns a view of the bytes (into the stream
    // for inline blobs, into the oob region for out-of-band ones).
    [[nodiscard]] Status get_blob(ConstBytes* out);

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    [[nodiscard]] Status get_vector(std::vector<T>* v) {
        std::uint64_t n = 0;
        MPICD_RETURN_IF_ERROR(get_varint(&n));
        const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(T);
        if (pos_ + bytes > stream_.size()) return Status::err_serialize;
        v->resize(static_cast<std::size_t>(n));
        std::memcpy(v->data(), stream_.data() + pos_, bytes);
        pos_ += bytes;
        return Status::success;
    }

private:
    ConstBytes stream_;
    std::span<const ConstIovEntry> oob_;
    std::size_t pos_ = 0;
    std::size_t next_oob_check_ = 0; // indices must be referenced in order
};

} // namespace mpicd::serial
