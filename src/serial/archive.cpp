#include "serial/archive.hpp"

#include <cstring>

namespace mpicd::serial {

void OArchive::put_varint(std::uint64_t v) {
    while (v >= 0x80) {
        put_u8(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    put_u8(static_cast<std::uint8_t>(v));
}

void OArchive::put_string(const std::string& s) {
    put_varint(s.size());
    append_bytes(stream_, as_bytes_of(s.data(), s.size()));
}

void OArchive::put_blob(ConstBytes data) {
    if (policy_.enabled && static_cast<Count>(data.size()) >= policy_.threshold) {
        put_u8(1);
        put_varint(oob_.size());
        put_varint(data.size());
        oob_.push_back({data.data(), static_cast<Count>(data.size())});
        return;
    }
    put_u8(0);
    put_varint(data.size());
    append_bytes(stream_, data);
}

Status IArchive::get_u8(std::uint8_t* v) {
    if (pos_ >= stream_.size()) return Status::err_serialize;
    *v = static_cast<std::uint8_t>(stream_[pos_++]);
    return Status::success;
}

Status IArchive::get_varint(std::uint64_t* v) {
    std::uint64_t out = 0;
    int shift = 0;
    while (true) {
        std::uint8_t b = 0;
        MPICD_RETURN_IF_ERROR(get_u8(&b));
        out |= static_cast<std::uint64_t>(b & 0x7F) << shift;
        if ((b & 0x80) == 0) break;
        shift += 7;
        if (shift >= 64) return Status::err_serialize;
    }
    *v = out;
    return Status::success;
}

Status IArchive::get_string(std::string* s) {
    std::uint64_t n = 0;
    MPICD_RETURN_IF_ERROR(get_varint(&n));
    if (pos_ + n > stream_.size()) return Status::err_serialize;
    s->assign(reinterpret_cast<const char*>(stream_.data() + pos_),
              static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return Status::success;
}

Status IArchive::get_raw(MutBytes dst) {
    if (pos_ + dst.size() > stream_.size()) return Status::err_serialize;
    std::memcpy(dst.data(), stream_.data() + pos_, dst.size());
    pos_ += dst.size();
    return Status::success;
}

Status IArchive::get_blob(ConstBytes* out) {
    std::uint8_t tag = 0;
    MPICD_RETURN_IF_ERROR(get_u8(&tag));
    if (tag == 0) {
        std::uint64_t n = 0;
        MPICD_RETURN_IF_ERROR(get_varint(&n));
        if (pos_ + n > stream_.size()) return Status::err_serialize;
        *out = stream_.subspan(pos_, static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return Status::success;
    }
    if (tag == 1) {
        std::uint64_t idx = 0, len = 0;
        MPICD_RETURN_IF_ERROR(get_varint(&idx));
        MPICD_RETURN_IF_ERROR(get_varint(&len));
        if (idx >= oob_.size()) return Status::err_serialize;
        const auto& region = oob_[idx];
        if (static_cast<std::uint64_t>(region.len) != len) return Status::err_serialize;
        *out = ConstBytes(static_cast<const std::byte*>(region.base),
                          static_cast<std::size_t>(region.len));
        return Status::success;
    }
    return Status::err_serialize;
}

} // namespace mpicd::serial
