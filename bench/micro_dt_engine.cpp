// Microbenchmark (google-benchmark): derived-datatype convertor pack
// throughput across type shapes — contiguous (single memcpy), strided
// vector (medium segments) and gapped struct (two tiny segments per
// element, the worst case driving the paper's Fig. 5 baseline).
#include <benchmark/benchmark.h>

#include <vector>

#include "dt/convertor.hpp"

namespace {

using namespace mpicd;
using namespace mpicd::dt;

void BM_PackContiguous(benchmark::State& state) {
    const Count n = state.range(0);
    auto t = Datatype::contiguous(n / 8, type_double());
    (void)t->commit();
    std::vector<double> data(static_cast<std::size_t>(n / 8), 1.0);
    ByteVec out(static_cast<std::size_t>(n));
    for (auto _ : state) {
        Count used = 0;
        benchmark::DoNotOptimize(
            Convertor::pack_all(t, data.data(), 1, out, &used));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_PackContiguous)->Range(4 << 10, 4 << 20);

void BM_PackStridedVector(benchmark::State& state) {
    const Count n = state.range(0);
    const Count blocks = n / 64; // 64 B blocks, half-dense stride
    auto t = Datatype::vector(blocks, 8, 16, type_double());
    (void)t->commit();
    std::vector<double> data(static_cast<std::size_t>(blocks * 16 + 8), 1.0);
    ByteVec out(static_cast<std::size_t>(n));
    for (auto _ : state) {
        Count used = 0;
        benchmark::DoNotOptimize(
            Convertor::pack_all(t, data.data(), 1, out, &used));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_PackStridedVector)->Range(4 << 10, 4 << 20);

void BM_PackGappedStruct(benchmark::State& state) {
    // The paper's struct-simple: 12 B + 8 B segments per 24 B element.
    const Count blocklens[] = {3, 1};
    const Count displs[] = {0, 16};
    const TypeRef types[] = {type_int32(), type_double()};
    auto s = Datatype::struct_(blocklens, displs, types);
    auto t = Datatype::resized(s, 0, 24);
    (void)t->commit();
    const Count count = state.range(0) / 20;
    ByteVec data(static_cast<std::size_t>(count * 24));
    ByteVec out(static_cast<std::size_t>(count * 20));
    for (auto _ : state) {
        Count used = 0;
        benchmark::DoNotOptimize(
            Convertor::pack_all(t, data.data(), count, out, &used));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * count * 20);
}
BENCHMARK(BM_PackGappedStruct)->Range(4 << 10, 4 << 20);

void BM_UnpackGappedStruct(benchmark::State& state) {
    const Count blocklens[] = {3, 1};
    const Count displs[] = {0, 16};
    const TypeRef types[] = {type_int32(), type_double()};
    auto s = Datatype::struct_(blocklens, displs, types);
    auto t = Datatype::resized(s, 0, 24);
    (void)t->commit();
    const Count count = state.range(0) / 20;
    ByteVec data(static_cast<std::size_t>(count * 24));
    ByteVec in(static_cast<std::size_t>(count * 20));
    for (auto _ : state) {
        benchmark::DoNotOptimize(Convertor::unpack_all(t, data.data(), count, in));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * count * 20);
}
BENCHMARK(BM_UnpackGappedStruct)->Range(4 << 10, 4 << 20);

} // namespace

BENCHMARK_MAIN();
