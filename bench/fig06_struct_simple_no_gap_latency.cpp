// Figure 6: latency of the struct-simple-no-gap type (Listing 8). With no
// gap the type is contiguous and the derived-datatype baseline matches —
// Open MPI "performs as expected when sending contiguous types".
#include "rust_methods.hpp"

int main() {
    using namespace mpicd;
    using namespace mpicd::bench;
    const auto params = netsim::WireParams::from_env();
    const auto ddt = core::struct_simple_no_gap_dt();

    Table table("Fig.6  struct-simple-no-gap latency (us, one-way)", "size",
                {"custom", "packed", "rsmpi-ddt"});
    for (Count count = 1; count <= (smoke_mode() ? Count(16) : Count(1) << 15); count *= 4) {
        const Count size = count * Count(sizeof(core::StructSimpleNoGap));
        const int iters = iters_for(size);
        std::vector<double> row;
        row.push_back(measure(NoGapBench::custom(count), iters, params).mean());
        row.push_back(measure(NoGapBench::packed(count), iters, params).mean());
        row.push_back(measure(NoGapBench::derived(count, ddt), iters, params).mean());
        table.add_row(size_label(size), row);
    }
    table.finish("fig06_struct_simple_no_gap_latency");
    return 0;
}
