// Figure 1: latency of the double-vector type vs. total message size, for
// several sub-vector sizes (64 B .. 4 KiB), comparing the custom datatype
// API against manual packing and the raw-bytes floor.
#include "rust_methods.hpp"

int main() {
    using namespace mpicd;
    using namespace mpicd::bench;
    const auto params = netsim::WireParams::from_env();

    Table table("Fig.1  double-vector latency (us, one-way)", "size",
                {"custom-64", "custom-1K", "custom-4K", "packed-64", "packed-1K",
                 "bytes"});
    for (Count size = 64; size <= (smoke_mode() ? Count(256) : Count(1) << 20); size *= 4) {
        const int iters = iters_for(size);
        std::vector<double> row;
        for (const Count sub : {Count(64), Count(1024), Count(4096)}) {
            row.push_back(measure(double_vec_custom(size, sub), iters, params).mean());
        }
        for (const Count sub : {Count(64), Count(1024)}) {
            row.push_back(measure(double_vec_packed(size, sub), iters, params).mean());
        }
        row.push_back(measure(bytes_baseline(size), iters, params).mean());
        table.add_row(size_label(size), row);
    }
    table.finish("fig01_double_vec_latency");
    return 0;
}
