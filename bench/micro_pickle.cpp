// Microbenchmark (google-benchmark): pickle dumps/loads throughput,
// in-band vs out-of-band — the serialization-side costs behind Figs. 8–9.
#include <benchmark/benchmark.h>

#include "pysim/pickle.hpp"

namespace {

using namespace mpicd;
using namespace mpicd::pysim;

PyValue array_object(Count bytes) {
    return PyValue(NdArray::pattern(DType::u8, {bytes}, 1));
}

void BM_DumpsInBand(benchmark::State& state) {
    const auto v = array_object(state.range(0));
    for (auto _ : state) {
        Pickled p;
        benchmark::DoNotOptimize(dumps(v, DumpOptions{}, &p));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_DumpsInBand)->Range(4 << 10, 16 << 20);

void BM_DumpsOutOfBand(benchmark::State& state) {
    const auto v = array_object(state.range(0));
    DumpOptions opts;
    opts.out_of_band = true;
    for (auto _ : state) {
        Pickled p;
        benchmark::DoNotOptimize(dumps(v, opts, &p));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_DumpsOutOfBand)->Range(4 << 10, 16 << 20);

void BM_LoadsInBand(benchmark::State& state) {
    const auto v = array_object(state.range(0));
    Pickled p;
    (void)dumps(v, DumpOptions{}, &p);
    for (auto _ : state) {
        PyValue out;
        benchmark::DoNotOptimize(loads(p.stream, &out));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_LoadsInBand)->Range(4 << 10, 16 << 20);

void BM_LoadsAllocOutOfBand(benchmark::State& state) {
    const auto v = array_object(state.range(0));
    DumpOptions opts;
    opts.out_of_band = true;
    Pickled p;
    (void)dumps(v, opts, &p);
    for (auto _ : state) {
        PyValue out;
        std::vector<IovEntry> fill;
        benchmark::DoNotOptimize(loads_alloc(p.stream, &out, &fill));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_LoadsAllocOutOfBand)->Range(4 << 10, 16 << 20);

} // namespace

BENCHMARK_MAIN();
