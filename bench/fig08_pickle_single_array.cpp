// Figure 8: Python ping-pong with a single NumPy-like array per message.
// Series: raw-buffer roofline, in-band pickle, out-of-band pickle over
// multiple messages, and out-of-band pickle through the custom datatype.
#include "rust_methods.hpp"
#include "pysim/mpi4py_sim.hpp"

namespace {

using namespace mpicd;
using namespace mpicd::bench;
using pysim::PyValue;
using pysim::PyXfer;

Method pickle_method(Count bytes, PyXfer xfer) {
    auto obj = std::make_shared<PyValue>(
        pysim::NdArray::pattern(pysim::DType::u8, {bytes}, 1));
    auto echo = std::make_shared<PyValue>();
    pysim::PyXferOptions opts;
    opts.method = xfer;
    return {
        to_cstring(xfer),
        [obj, opts](p2p::Communicator& c, int) {
            (void)pysim::send_pyobj(c, *obj, 1, 1, opts);
            PyValue back;
            (void)pysim::recv_pyobj(c, &back, 1, 2, opts);
        },
        [echo, opts](p2p::Communicator& c, int) {
            (void)pysim::recv_pyobj(c, echo.get(), 0, 1, opts);
            (void)pysim::send_pyobj(c, *echo, 0, 2, opts);
        },
    };
}

} // namespace

int main() {
    const auto params = netsim::WireParams::from_env();
    Table table("Fig.8  pickle ping-pong, single array (MB/s)", "size",
                {"roofline", "pickle-basic", "pickle-oob", "pickle-oob-cdt"});
    for (Count size = 1024; size <= (smoke_mode() ? Count(16384) : Count(1) << 24); size *= 4) {
        const int iters = std::max(4, iters_for(size) / 2);
        std::vector<double> row;
        row.push_back(
            bandwidth_MBps(size, measure(bytes_baseline(size), iters, params).mean()));
        for (const auto xfer :
             {PyXfer::basic, PyXfer::oob_multi, PyXfer::oob_cdt}) {
            row.push_back(bandwidth_MBps(
                size, measure(pickle_method(size, xfer), iters, params).mean()));
        }
        table.add_row(size_label(size), row);
    }
    table.finish("fig08_pickle_single_array");
    return 0;
}
