// Figure 10: DDTBench subset — per-kernel ping-pong bandwidth under every
// transfer strategy the paper compares:
//   reference     raw bytes of the same size (no packing anywhere)
//   manual        manual pack loops + contiguous send
//   mpi-pack      MPI_Pack-style convertor pack + contiguous send
//   mpi-ddt       derived datatype handed straight to send/recv
//   custom-pack   the custom datatype API, pack/unpack callbacks
//   custom-region the custom datatype API, memory regions (where sensible)
#include "rust_methods.hpp"
#include "ddtbench/kernel.hpp"
#include "dt/convertor.hpp"

namespace {

using namespace mpicd;
using namespace mpicd::bench;
using ddtbench::Kernel;

struct KernelPair {
    std::shared_ptr<Kernel> k0, k1;
    Count bytes;
};

KernelPair make_pair_(const std::string& name, Count target) {
    KernelPair p;
    p.k0 = ddtbench::make_kernel(name);
    p.k1 = ddtbench::make_kernel(name);
    p.k0->resize(target);
    p.k1->resize(target);
    p.k0->fill(1);
    p.k1->clear();
    p.bytes = p.k0->payload_bytes();
    return p;
}

Method reference_method(const KernelPair& p) { return bytes_baseline(p.bytes); }

Method manual_method(KernelPair p) {
    auto buf0 = std::make_shared<ByteVec>(static_cast<std::size_t>(p.bytes));
    auto buf1 = std::make_shared<ByteVec>(static_cast<std::size_t>(p.bytes));
    auto pack = [](Kernel& k, ByteVec& buf, p2p::Communicator& c) {
        SimTime cost = 0.0;
        {
            const ScopedMeasure m(cost);
            k.manual_pack(buf.data());
        }
        c.advance_time(cost);
    };
    auto unpack = [](Kernel& k, const ByteVec& buf, p2p::Communicator& c) {
        SimTime cost = 0.0;
        {
            const ScopedMeasure m(cost);
            k.manual_unpack(buf.data());
        }
        c.advance_time(cost);
    };
    const Count n = p.bytes;
    return {
        "manual",
        [p, buf0, n, pack, unpack](p2p::Communicator& c, int) {
            pack(*p.k0, *buf0, c);
            (void)c.send_bytes(buf0->data(), n, 1, 1);
            (void)c.recv_bytes(buf0->data(), n, 1, 2);
            unpack(*p.k0, *buf0, c);
        },
        [p, buf1, n, pack, unpack](p2p::Communicator& c, int) {
            (void)c.recv_bytes(buf1->data(), n, 0, 1);
            unpack(*p.k1, *buf1, c);
            pack(*p.k1, *buf1, c);
            (void)c.send_bytes(buf1->data(), n, 0, 2);
        },
    };
}

Method mpi_pack_method(KernelPair p) {
    auto buf0 = std::make_shared<ByteVec>(static_cast<std::size_t>(p.bytes));
    auto buf1 = std::make_shared<ByteVec>(static_cast<std::size_t>(p.bytes));
    auto pack = [](Kernel& k, ByteVec& buf, p2p::Communicator& c) {
        SimTime cost = 0.0;
        {
            const ScopedMeasure m(cost);
            Count used = 0;
            (void)dt::Convertor::pack_all(k.datatype(), k.dt_buffer(), k.dt_count(),
                                          buf, &used);
        }
        c.advance_time(cost);
    };
    auto unpack = [](Kernel& k, const ByteVec& buf, p2p::Communicator& c) {
        SimTime cost = 0.0;
        {
            const ScopedMeasure m(cost);
            (void)dt::Convertor::unpack_all(k.datatype(), k.dt_buffer(), k.dt_count(),
                                            buf);
        }
        c.advance_time(cost);
    };
    const Count n = p.bytes;
    return {
        "mpi-pack",
        [p, buf0, n, pack, unpack](p2p::Communicator& c, int) {
            pack(*p.k0, *buf0, c);
            (void)c.send_bytes(buf0->data(), n, 1, 1);
            (void)c.recv_bytes(buf0->data(), n, 1, 2);
            unpack(*p.k0, *buf0, c);
        },
        [p, buf1, n, pack, unpack](p2p::Communicator& c, int) {
            (void)c.recv_bytes(buf1->data(), n, 0, 1);
            unpack(*p.k1, *buf1, c);
            pack(*p.k1, *buf1, c);
            (void)c.send_bytes(buf1->data(), n, 0, 2);
        },
    };
}

Method mpi_ddt_method(KernelPair p) {
    return {
        "mpi-ddt",
        [p](p2p::Communicator& c, int) {
            (void)c.isend(p.k0->dt_buffer(), p.k0->dt_count(), p.k0->datatype(), 1, 1)
                .wait();
            (void)c.irecv(p.k0->dt_buffer(), p.k0->dt_count(), p.k0->datatype(), 1, 2)
                .wait();
        },
        [p](p2p::Communicator& c, int) {
            (void)c.irecv(p.k1->dt_buffer(), p.k1->dt_count(), p.k1->datatype(), 0, 1)
                .wait();
            (void)c.isend(p.k1->dt_buffer(), p.k1->dt_count(), p.k1->datatype(), 0, 2)
                .wait();
        },
    };
}

Method custom_method(KernelPair p, const core::CustomDatatype& type,
                     const char* name) {
    const auto* tp = &type; // the datatype is a process-lifetime singleton
    return {
        name,
        [p, tp](p2p::Communicator& c, int) {
            (void)c.send_custom(p.k0.get(), 1, *tp, 1, 1);
            (void)c.recv_custom(p.k0.get(), 1, *tp, 1, 2);
        },
        [p, tp](p2p::Communicator& c, int) {
            (void)c.recv_custom(p.k1.get(), 1, *tp, 0, 1);
            (void)c.send_custom(p.k1.get(), 1, *tp, 0, 2);
        },
    };
}

} // namespace

int main() {
    const auto params = netsim::WireParams::from_env();
    // ~1 MiB exchanged payload (64 KiB under smoke).
    const Count kTarget = smoke_mode() ? 64 * 1024 : 1024 * 1024;

    Table table("Fig.10  DDTBench ping-pong bandwidth (MB/s), ~1 MiB payload",
                "kernel",
                {"reference", "manual", "mpi-pack", "mpi-ddt", "custom-pack",
                 "custom-region"});
    const auto names = ddtbench::kernel_names();
    const std::size_t nkernels = bench_limit(2, names.size());
    for (std::size_t ki = 0; ki < nkernels; ++ki) {
        const auto& name = names[ki];
        const auto p = make_pair_(name, kTarget);
        const int iters = iters_for(p.bytes);
        std::vector<double> row;
        row.push_back(
            bandwidth_MBps(p.bytes, measure(reference_method(p), iters, params).mean()));
        row.push_back(
            bandwidth_MBps(p.bytes, measure(manual_method(p), iters, params).mean()));
        row.push_back(
            bandwidth_MBps(p.bytes, measure(mpi_pack_method(p), iters, params).mean()));
        row.push_back(
            bandwidth_MBps(p.bytes, measure(mpi_ddt_method(p), iters, params).mean()));
        row.push_back(bandwidth_MBps(
            p.bytes,
            measure(custom_method(p, ddtbench::kernel_pack_type(), "custom-pack"),
                    iters, params)
                .mean()));
        if (p.k0->region_count() > 0) {
            row.push_back(bandwidth_MBps(
                p.bytes,
                measure(custom_method(p, ddtbench::kernel_region_type(),
                                      "custom-region"),
                        iters, params)
                    .mean()));
        } else {
            row.push_back(0.0); // regions impracticable (Table I)
        }
        table.add_row(name, row);
    }
    table.finish("fig10_ddtbench");
    std::printf("\n(custom-region = 0 means regions are impracticable for that "
                "kernel; see Table I)\n");
    return 0;
}
