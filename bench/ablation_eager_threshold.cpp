// Ablation A3: where the manual-pack bandwidth dip lands as a function of
// the transport's eager->rendezvous threshold (the paper pins the Fig. 7
// dip at 2^15 = UCX's default switch point).
#include "rust_methods.hpp"

int main() {
    using namespace mpicd;
    using namespace mpicd::bench;

    const Count thresholds[] = {8 * 1024, 32 * 1024, 128 * 1024};
    Table table("Ablation A3: struct-simple manual-pack bandwidth (MB/s) vs eager "
                "threshold",
                "size", {"eager-8K", "eager-32K", "eager-128K"});
    for (Count size = 2048; size <= (smoke_mode() ? Count(8192) : Count(1) << 20); size *= 2) {
        const Count count = size / core::kScalarPack;
        const Count actual = count * core::kScalarPack;
        const int iters = iters_for(actual);
        std::vector<double> row;
        for (const Count th : thresholds) {
            auto params = netsim::WireParams::from_env();
            params.eager_threshold = th;
            row.push_back(bandwidth_MBps(
                actual, measure(SimpleBench::packed(count), iters, params).mean()));
        }
        table.add_row(size_label(actual), row);
    }
    table.finish("ablation_eager_threshold");
    return 0;
}
