// Ablation A7: hashed TagMatcher vs the linear seed matcher must be
// OBSERVATIONALLY IDENTICAL — same statuses, same payload bytes, same
// virtual completion times, same wire traffic (bytes, retransmits, acks)
// — across a fault matrix. The hashed matcher is a pure data-structure
// swap; any divergence is a matching-semantics bug, so this bench exits
// nonzero on the first mismatch (making the bench-smoke ctest leg a
// correctness gate, not just a perf gate).
//
// Single-threaded and seeded: every run of a (mode, scenario) pair is a
// deterministic function of the traffic, so equality is exact, not
// statistical. MPICD_TAG_MATCH is flipped between runs via setenv before
// universe construction (the worker samples it when it builds its
// matcher).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "netsim/fault.hpp"

namespace {

using namespace mpicd;
using namespace mpicd::bench;

// FNV-1a over a byte buffer: cheap, deterministic payload fingerprint.
std::uint64_t fnv1a(const ByteVec& v) {
    std::uint64_t h = 1469598103934665603ull;
    for (const std::byte b : v) {
        h ^= static_cast<std::uint64_t>(b);
        h *= 1099511628211ull;
    }
    return h;
}

// Everything observable about one run: per-message outcomes plus the
// protocol's wire-level footprint.
struct RunResult {
    std::vector<int> statuses;
    std::vector<double> vtimes;
    std::vector<std::uint64_t> payloads;
    std::uint64_t wire_bytes = 0;
    std::uint64_t eager_sends = 0;
    std::uint64_t rndv_sends = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t dups_suppressed = 0;
    std::uint64_t crc_detected = 0;
    bool idle = true;

    bool operator==(const RunResult&) const = default;
};

void note(RunResult& out, const p2p::MsgStatus& st, const ByteVec& payload) {
    out.statuses.push_back(static_cast<int>(st.status));
    out.vtimes.push_back(st.vtime);
    out.payloads.push_back(fnv1a(payload));
}

// Deterministic mixed traffic: pre-posted and unexpected receives, exact
// and wildcard matching, eager and rendezvous sizes, deep tag queues.
RunResult run_traffic(const netsim::FaultConfig& cfg) {
    RunResult out;
    p2p::Universe uni(2, netsim::WireParams::from_env(), cfg);
    const int kRounds = smoke_mode() ? 12 : 48;

    for (int i = 0; i < kRounds; ++i) {
        const std::size_t len =
            (i % 5 == 4) ? 64 * 1024 + static_cast<std::size_t>(i) * 128
                         : 128 + static_cast<std::size_t>(i % 7) * 256;
        ByteVec src(len);
        for (std::size_t k = 0; k < len; ++k)
            src[k] = static_cast<std::byte>((k * 31 + static_cast<std::size_t>(i)) & 0xFF);
        ByteVec dst(len);

        p2p::Request rr, rs;
        switch (i % 3) {
            case 0: // pre-posted, exact (src, tag)
                rr = uni.comm(1).irecv_bytes(dst.data(), Count(len), 0, i);
                rs = uni.comm(0).isend_bytes(src.data(), Count(len), 1, i);
                break;
            case 1: // unexpected: the send lands before the recv is posted
                rs = uni.comm(0).isend_bytes(src.data(), Count(len), 1, i);
                uni.progress_all();
                uni.progress_all();
                rr = uni.comm(1).irecv_bytes(dst.data(), Count(len), 0, i);
                break;
            default: // wildcard receive
                rr = uni.comm(1).irecv_bytes(dst.data(), Count(len),
                                             p2p::kAnySource, p2p::kAnyTag);
                rs = uni.comm(0).isend_bytes(src.data(), Count(len), 1, i);
                break;
        }
        const auto ss = rs.wait();
        const auto st = rr.wait();
        note(out, ok(ss.status) ? st : ss, dst);
        if (dst != src) out.payloads.back() ^= 1; // poison on mismatch
    }

    for (int r = 0; r < 2; ++r) {
        const auto s = uni.worker(r).stats();
        out.wire_bytes += s.bytes_sent;
        out.eager_sends += s.eager_sends;
        out.rndv_sends += s.rndv_sends;
        out.retransmits += s.retransmits;
        out.acks_sent += s.acks_sent;
        out.dups_suppressed += s.duplicates_suppressed;
        out.crc_detected += s.corruption_detected;
        out.idle = out.idle && uni.worker(r).idle();
    }
    return out;
}

RunResult run_mode(const char* mode, const netsim::FaultConfig& cfg) {
    setenv("MPICD_TAG_MATCH", mode, 1);
    RunResult r = run_traffic(cfg);
    unsetenv("MPICD_TAG_MATCH");
    return r;
}

} // namespace

int main() {
    using namespace mpicd;
    using namespace mpicd::bench;

    struct Scenario {
        const char* label;
        double drop, dup, corrupt, reorder;
    };
    const Scenario scenarios[] = {
        {"lossless", 0.0, 0.0, 0.0, 0.0}, {"drop-2%", 0.02, 0.0, 0.0, 0.0},
        {"dup-3%", 0.0, 0.03, 0.0, 0.0},  {"corrupt-2%", 0.0, 0.0, 0.02, 0.0},
        {"mixed", 0.02, 0.02, 0.02, 0.02},
    };
    const std::size_t n = bench_limit(2, 5);

    Table table("Ablation A7: linear vs hashed matcher, wire-identical "
                "under faults",
                "scenario",
                {"messages", "wire_bytes", "retransmits", "identical"});

    bool all_identical = true;
    for (std::size_t s = 0; s < n; ++s) {
        const Scenario& sc = scenarios[s];
        netsim::FaultConfig cfg;
        cfg.seed = 0x3A7C0 + static_cast<std::uint64_t>(s);
        cfg.drop = sc.drop;
        cfg.dup = sc.dup;
        cfg.corrupt = sc.corrupt;
        cfg.reorder = sc.reorder;
        if (sc.drop + sc.dup + sc.corrupt + sc.reorder == 0.0)
            cfg.force_reliable = true; // keep the protocol armed everywhere

        const RunResult lin = run_mode("linear", cfg);
        const RunResult hsh = run_mode("hashed", cfg);
        const bool same = lin == hsh;
        all_identical = all_identical && same;
        table.add_row(sc.label,
                      {static_cast<double>(hsh.statuses.size()),
                       static_cast<double>(hsh.wire_bytes),
                       static_cast<double>(hsh.retransmits),
                       same ? 1.0 : 0.0});
        if (!same) {
            std::fprintf(stderr, "DIVERGENCE in scenario %s:\n", sc.label);
            std::fprintf(stderr,
                         "  wire_bytes  lin=%llu hsh=%llu\n"
                         "  retransmits lin=%llu hsh=%llu\n"
                         "  acks        lin=%llu hsh=%llu\n"
                         "  idle        lin=%d hsh=%d\n",
                         static_cast<unsigned long long>(lin.wire_bytes),
                         static_cast<unsigned long long>(hsh.wire_bytes),
                         static_cast<unsigned long long>(lin.retransmits),
                         static_cast<unsigned long long>(hsh.retransmits),
                         static_cast<unsigned long long>(lin.acks_sent),
                         static_cast<unsigned long long>(hsh.acks_sent),
                         lin.idle, hsh.idle);
            for (std::size_t i = 0; i < lin.statuses.size(); ++i) {
                if (i < hsh.statuses.size() &&
                    (lin.statuses[i] != hsh.statuses[i] ||
                     lin.vtimes[i] != hsh.vtimes[i] ||
                     lin.payloads[i] != hsh.payloads[i]))
                    std::fprintf(stderr,
                                 "  msg %zu: status %d/%d vtime %.6f/%.6f\n",
                                 i, lin.statuses[i], hsh.statuses[i],
                                 lin.vtimes[i], hsh.vtimes[i]);
            }
        }
    }

    table.finish("ablation_matching");
    if (!all_identical) {
        std::fprintf(stderr,
                     "FAIL: linear and hashed matchers diverged on the "
                     "fault matrix\n");
        return 1;
    }
    return 0;
}
