// Table I: benchmark characteristics, printed from the kernel metadata so
// the table cannot drift from the implementation.
#include <cstdio>

#include "ddtbench/kernel.hpp"

int main() {
    using namespace mpicd::ddtbench;
    std::printf("# Table I: Benchmark characteristics\n");
    std::printf("%-14s %-26s %-42s %s\n", "Benchmark", "MPI Datatypes",
                "Loop Structure", "Memory Regions");
    for (const auto& name : kernel_names()) {
        const auto k = make_kernel(name);
        const auto info = k->info();
        std::printf("%-14s %-26s %-42s %s\n", info.name.c_str(),
                    info.mpi_datatypes.c_str(), info.loop_structure.c_str(),
                    info.memory_regions ? "yes" : "-");
    }
    return 0;
}
