// Table I: benchmark characteristics, printed from the kernel metadata so
// the table cannot drift from the implementation.
#include <cstdio>
#include <string>

#include "base/config.hpp"
#include "ddtbench/kernel.hpp"

int main() {
    using namespace mpicd::ddtbench;
    std::printf("# Table I: Benchmark characteristics\n");
    std::printf("%-14s %-26s %-42s %s\n", "Benchmark", "MPI Datatypes",
                "Loop Structure", "Memory Regions");
    const auto names = kernel_names();
    for (const auto& name : names) {
        const auto k = make_kernel(name);
        const auto info = k->info();
        std::printf("%-14s %-26s %-42s %s\n", info.name.c_str(),
                    info.mpi_datatypes.c_str(), info.loop_structure.c_str(),
                    info.memory_regions ? "yes" : "-");
    }

    // Machine-readable companion (string cells, so written directly rather
    // than through bench::Table, whose rows are numeric).
    const std::string dir =
        mpicd::env_string("MPICD_BENCH_JSON_DIR").value_or(std::string("."));
    const std::string path = dir + "/BENCH_table1_characteristics.json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"name\": \"table1_characteristics\",\n  \"rows\": [\n");
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto k = make_kernel(names[i]);
        const auto info = k->info();
        std::fprintf(f,
                     "    {\"benchmark\": \"%s\", \"mpi_datatypes\": \"%s\", "
                     "\"loop_structure\": \"%s\", \"memory_regions\": %s}%s\n",
                     info.name.c_str(), info.mpi_datatypes.c_str(),
                     info.loop_structure.c_str(),
                     info.memory_regions ? "true" : "false",
                     i + 1 < names.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
