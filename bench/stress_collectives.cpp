// Stress: sustained nonblocking-collective traffic on a two-level fabric.
//
// Three scenarios, each measured in deterministic virtual time at rank 0
// and each also a correctness check (the bench exits nonzero on any wrong
// payload or status — the bench-smoke ctest leg runs it as a gate):
//
//   barrier-storm  several ibarriers in flight at once, back to back —
//                  exercises tag-epoch isolation between overlapping
//                  instances of the same collective;
//   mixed-batch    iallreduce(double) + iallreduce(int64) + ibcast +
//                  igather all outstanding together, values verified —
//                  the interleaving that used to alias tags in the
//                  historical fixed-tag collectives;
//   overlap-p2p    an iallreduce in flight while the ranks run a p2p ring
//                  on the historical collision window (user tags around
//                  0x7FFF0006) — collective and user traffic must not
//                  interfere in either direction.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common.hpp"
#include "p2p/coll/nonblocking.hpp"
#include "p2p/coll/topology.hpp"
#include "p2p/collectives.hpp"

namespace {

using namespace mpicd;
using namespace mpicd::bench;

constexpr int kRanks = 8;

netsim::WireParams two_level_params() {
    netsim::WireParams p;
    p.ranks_per_node = 4;
    p.inter_latency_us = 10.0;
    p.inter_bandwidth_Bpus = 2500.0;
    return p;
}

struct Scenario {
    SimTime vtime_us = 0.0; // rank-0 virtual time for the whole scenario
    std::uint64_t ops = 0;  // collective operations completed
};

void check(bool cond, const char* what, std::atomic<bool>& failed) {
    if (!cond) {
        std::fprintf(stderr, "FAIL: %s\n", what);
        failed.store(true);
    }
}

// Run `body(rank)` on kRanks threads over a fresh universe; returns rank
// 0's virtual time spent inside the timed region (after one barrier).
template <typename Body>
SimTime run_ranks(p2p::Universe& uni, std::atomic<bool>& failed, Body&& body) {
    SimTime t0 = 0.0, t1 = 0.0;
    auto thread_body = [&](int r) {
        auto& comm = uni.comm(r);
        check(ok(p2p::barrier(comm)), "entry barrier", failed);
        if (r == 0) t0 = comm.now();
        body(comm);
        if (r == 0) t1 = comm.now();
    };
    std::vector<std::thread> threads;
    for (int r = 1; r < kRanks; ++r) threads.emplace_back(thread_body, r);
    thread_body(0);
    for (auto& t : threads) t.join();
    return t1 - t0;
}

Scenario barrier_storm(std::atomic<bool>& failed) {
    const int rounds = smoke_mode() ? 4 : 32;
    constexpr int kInFlight = 4;
    p2p::Universe uni(kRanks, two_level_params());
    Scenario out;
    out.vtime_us = run_ranks(uni, failed, [&](p2p::Communicator& comm) {
        for (int i = 0; i < rounds; ++i) {
            p2p::coll::CollRequest reqs[kInFlight];
            for (auto& rq : reqs) rq = p2p::coll::ibarrier(comm);
            check(ok(p2p::coll::wait_all(reqs)), "barrier storm", failed);
        }
    });
    out.ops = static_cast<std::uint64_t>(rounds) * kInFlight;
    return out;
}

Scenario mixed_batch(std::atomic<bool>& failed) {
    const int rounds = smoke_mode() ? 4 : 24;
    constexpr std::size_t kBcastBytes = 4 * 1024;
    constexpr std::size_t kGatherBytes = 2 * 1024;
    p2p::Universe uni(kRanks, two_level_params());
    Scenario out;
    out.vtime_us = run_ranks(uni, failed, [&](p2p::Communicator& comm) {
        const int r = comm.rank();
        std::vector<std::byte> bc(kBcastBytes);
        std::vector<std::byte> gs(kGatherBytes);
        std::vector<std::byte> gr(r == 0 ? kGatherBytes * kRanks : 0);
        for (int i = 0; i < rounds; ++i) {
            double d = static_cast<double>(r + i);
            std::int64_t q = static_cast<std::int64_t>(r) - i;
            std::memset(bc.data(), r == 1 ? 0x5A + (i & 7) : 0, bc.size());
            std::memset(gs.data(), 0x10 + r, gs.size());
            p2p::coll::CollRequest reqs[4] = {
                p2p::coll::iallreduce(comm, &d, 1, p2p::ReduceOp::sum),
                p2p::coll::iallreduce(comm, &q, 1, p2p::ReduceOp::max),
                p2p::coll::ibcast_bytes(comm, bc.data(),
                                        static_cast<Count>(bc.size()), 1),
                p2p::coll::igather_bytes(comm, gs.data(),
                                         static_cast<Count>(gs.size()),
                                         r == 0 ? gr.data() : nullptr, 0),
            };
            check(ok(p2p::coll::wait_all(reqs)), "mixed batch", failed);
            const double want_d =
                static_cast<double>(kRanks * (kRanks - 1) / 2 + kRanks * i);
            check(d == want_d, "mixed batch: allreduce(double) value", failed);
            check(q == static_cast<std::int64_t>(kRanks - 1) - i,
                  "mixed batch: allreduce(int64) value", failed);
            check(bc[0] == std::byte{static_cast<unsigned char>(0x5A + (i & 7))},
                  "mixed batch: bcast payload", failed);
            if (r == 0)
                for (int src = 0; src < kRanks; ++src)
                    check(gr[static_cast<std::size_t>(src) * kGatherBytes] ==
                              std::byte{static_cast<unsigned char>(0x10 + src)},
                          "mixed batch: gather payload", failed);
        }
    });
    out.ops = static_cast<std::uint64_t>(rounds) * 4;
    return out;
}

Scenario overlap_p2p(std::atomic<bool>& failed) {
    const int rounds = smoke_mode() ? 4 : 24;
    constexpr std::size_t kMsg = 1024;
    p2p::Universe uni(kRanks, two_level_params());
    Scenario out;
    out.vtime_us = run_ranks(uni, failed, [&](p2p::Communicator& comm) {
        const int r = comm.rank();
        const int next = (r + 1) % kRanks;
        const int prev = (r + kRanks - 1) % kRanks;
        std::vector<std::byte> snd(kMsg), rcv(kMsg);
        for (int i = 0; i < rounds; ++i) {
            double d = 1.0;
            auto coll = p2p::coll::iallreduce(comm, &d, 1, p2p::ReduceOp::sum);
            // Ring traffic on the historical collective collision window:
            // these are plain user tags now and must pass through intact
            // while the collective is in flight.
            std::memset(snd.data(), 0x20 + ((r + i) & 0x3F), snd.size());
            auto rs = comm.isend_bytes(snd.data(), static_cast<Count>(kMsg),
                                       next, 0x7FFF0006 + (i & 3));
            auto rr = comm.irecv_bytes(rcv.data(), static_cast<Count>(kMsg),
                                       prev, 0x7FFF0006 + (i & 3));
            check(ok(rs.wait().status), "overlap: ring send", failed);
            check(ok(rr.wait().status), "overlap: ring recv", failed);
            check(rcv[0] == std::byte{static_cast<unsigned char>(
                                0x20 + ((prev + i) & 0x3F))},
                  "overlap: ring payload", failed);
            check(ok(coll.wait()), "overlap: iallreduce", failed);
            check(d == static_cast<double>(kRanks), "overlap: allreduce value",
                  failed);
        }
    });
    out.ops = static_cast<std::uint64_t>(rounds);
    return out;
}

} // namespace

int main() {
    using namespace mpicd;
    using namespace mpicd::bench;

    std::atomic<bool> failed{false};
    Table table("Stress: nonblocking collectives on a two-level fabric "
                "(8 ranks, 4 per node)",
                "scenario", {"coll_ops", "vtime_us", "us_per_op"});

    struct Row {
        const char* name;
        Scenario (*fn)(std::atomic<bool>&);
    };
    const Row rows[] = {
        {"barrier-storm", barrier_storm},
        {"mixed-batch", mixed_batch},
        {"overlap-p2p", overlap_p2p},
    };
    for (const Row& row : rows) {
        const Scenario sc = row.fn(failed);
        table.add_row(row.name,
                      {static_cast<double>(sc.ops), sc.vtime_us,
                       sc.ops != 0 ? sc.vtime_us / static_cast<double>(sc.ops)
                                   : 0.0});
    }

    table.finish("stress_collectives");
    if (failed.load()) {
        std::fprintf(stderr, "FAIL: stress_collectives observed wrong results\n");
        return 1;
    }
    return 0;
}
