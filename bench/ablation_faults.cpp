// Ablation A5: goodput vs packet-loss rate — what the CRC+ack+retransmit
// reliable-delivery protocol costs, from the faults-off baseline (protocol
// fully bypassed) through forced reliability on a lossless wire (pure
// ack/CRC overhead) to increasingly lossy links (retransmit cost).
//
// Single-threaded on purpose: both ranks are driven from one loop so the
// fault pattern for a given seed is a deterministic function of the traffic,
// making the numbers reproducible run to run (unlike the threaded ping-pong
// harness, whose interleaving is scheduler-dependent).
#include <algorithm>
#include <cstring>

#include "common.hpp"
#include "netsim/fault.hpp"

int main() {
    using namespace mpicd;
    using namespace mpicd::bench;

    struct Point {
        const char* label;
        bool force_reliable;
        double drop;
    };
    const Point points[] = {
        {"faults-off", false, 0.0}, {"loss-0%", true, 0.0},
        {"loss-1%", true, 0.01},    {"loss-2%", true, 0.02},
        {"loss-5%", true, 0.05},
    };

    const int kMessages = 64;

    Table table("Ablation A5: contiguous goodput (MB/s) vs loss rate, "
                "reliable delivery",
                "size",
                {"faults-off", "loss-0%", "loss-1%", "loss-2%", "loss-5%"});
    for (Count size = 4 * 1024; size <= (smoke_mode() ? Count(16) << 10 : Count(1) << 20); size *= 4) {
        std::vector<double> row;
        for (const Point& pt : points) {
            netsim::FaultConfig cfg;
            cfg.seed = 0xF4017;
            cfg.force_reliable = pt.force_reliable;
            cfg.drop = pt.drop;
            p2p::Universe uni(2, netsim::WireParams::from_env(), cfg);
            ByteVec src(static_cast<std::size_t>(size));
            ByteVec dst(static_cast<std::size_t>(size));
            std::memset(src.data(), 0xAB, src.size());
            const SimTime start =
                std::max(uni.comm(0).now(), uni.comm(1).now());
            for (int i = 0; i < kMessages; ++i) {
                auto rr = uni.comm(1).irecv_bytes(dst.data(), size, 0, i);
                auto rs = uni.comm(0).isend_bytes(src.data(), size, 1, i);
                (void)rs.wait();
                (void)rr.wait();
            }
            const SimTime stop =
                std::max(uni.comm(0).now(), uni.comm(1).now());
            row.push_back(
                bandwidth_MBps(size * kMessages, stop - start));
        }
        table.add_row(size_label(size), row);
    }
    table.finish("ablation_faults");
    return 0;
}
