// Method builders for the Rust-evaluation figures (paper §V-A, Figs. 1–7):
// the double-vector, struct-vec, struct-simple and struct-simple-no-gap
// types under three transfer strategies:
//   custom      — the paper's custom datatype API (pack + memory regions)
//   packed      — manual packing into a contiguous buffer, sent as bytes
//   rsmpi/bytes — derived-datatype baseline, or raw bytes where derived
//                 datatypes cannot express the type (double-vector)
#pragma once

#include <memory>

#include "common.hpp"
#include "core/paper_types.hpp"
#include "core/traits.hpp"

namespace mpicd::bench {

using SubVec = std::vector<std::int32_t>;

// --- double-vector -------------------------------------------------------------

struct DoubleVecData {
    std::vector<SubVec> vecs;   // the object being sent / received into
    ByteVec pack_buf;           // manual-pack staging
    Count data_bytes = 0;

    static std::shared_ptr<DoubleVecData> make(Count total_bytes, Count subvec_bytes) {
        auto d = std::make_shared<DoubleVecData>();
        const Count per = std::max<Count>(4, subvec_bytes);
        // For message sizes smaller than the sub-vector size, a single
        // sub-vector of the message size is sent (paper §V-A).
        const Count nsub = std::max<Count>(1, total_bytes / per);
        const Count actual_per = std::min(per, total_bytes);
        d->vecs.resize(static_cast<std::size_t>(nsub));
        for (auto& v : d->vecs) {
            v.assign(static_cast<std::size_t>(actual_per / 4), 7);
            d->data_bytes += actual_per;
        }
        d->pack_buf.resize(static_cast<std::size_t>(d->data_bytes));
        return d;
    }
};

inline Method double_vec_custom(Count total, Count sub) {
    auto d0 = DoubleVecData::make(total, sub);
    auto d1 = DoubleVecData::make(total, sub);
    const auto& type = core::custom_datatype_of<SubVec>();
    const Count n0 = static_cast<Count>(d0->vecs.size());
    return {
        "custom",
        [d0, &type, n0](p2p::Communicator& c, int) {
            (void)c.send_custom(d0->vecs.data(), n0, type, 1, 1);
            (void)c.recv_custom(d0->vecs.data(), n0, type, 1, 2);
        },
        [d1, &type, n0](p2p::Communicator& c, int) {
            (void)c.recv_custom(d1->vecs.data(), n0, type, 0, 1);
            (void)c.send_custom(d1->vecs.data(), n0, type, 0, 2);
        },
    };
}

inline void manual_pack_vecs(DoubleVecData& d, p2p::Communicator& c) {
    SimTime cost = 0.0;
    {
        const ScopedMeasure m(cost);
        std::size_t pos = 0;
        for (const auto& v : d.vecs) {
            std::memcpy(d.pack_buf.data() + pos, v.data(), v.size() * 4);
            pos += v.size() * 4;
        }
    }
    c.advance_time(cost);
}

inline void manual_unpack_vecs(DoubleVecData& d, p2p::Communicator& c) {
    SimTime cost = 0.0;
    {
        const ScopedMeasure m(cost);
        std::size_t pos = 0;
        for (auto& v : d.vecs) {
            std::memcpy(v.data(), d.pack_buf.data() + pos, v.size() * 4);
            pos += v.size() * 4;
        }
    }
    c.advance_time(cost);
}

inline Method double_vec_packed(Count total, Count sub) {
    auto d0 = DoubleVecData::make(total, sub);
    auto d1 = DoubleVecData::make(total, sub);
    return {
        "packed",
        [d0](p2p::Communicator& c, int) {
            manual_pack_vecs(*d0, c);
            (void)c.send_bytes(d0->pack_buf.data(), d0->data_bytes, 1, 1);
            (void)c.recv_bytes(d0->pack_buf.data(), d0->data_bytes, 1, 2);
            manual_unpack_vecs(*d0, c);
        },
        [d1](p2p::Communicator& c, int) {
            (void)c.recv_bytes(d1->pack_buf.data(), d1->data_bytes, 0, 1);
            manual_unpack_vecs(*d1, c);
            manual_pack_vecs(*d1, c);
            (void)c.send_bytes(d1->pack_buf.data(), d1->data_bytes, 0, 2);
        },
    };
}

// Raw-bytes floor (the paper's rsmpi-bytes-baseline): no structure at all.
inline Method bytes_baseline(Count total) {
    auto b0 = std::make_shared<ByteVec>(static_cast<std::size_t>(total));
    auto b1 = std::make_shared<ByteVec>(static_cast<std::size_t>(total));
    return {
        "bytes",
        [b0, total](p2p::Communicator& c, int) {
            (void)c.send_bytes(b0->data(), total, 1, 1);
            (void)c.recv_bytes(b0->data(), total, 1, 2);
        },
        [b1, total](p2p::Communicator& c, int) {
            (void)c.recv_bytes(b1->data(), total, 0, 1);
            (void)c.send_bytes(b1->data(), total, 0, 2);
        },
    };
}

// --- struct-array benchmarks (struct-vec / struct-simple / no-gap) --------------

// Generic three-method builder over an element type S with a manual
// pack/unpack of `packed` bytes per element.
template <typename S, Count PackedPerElem, typename PackFn, typename UnpackFn>
struct StructBench {
    static Method custom(Count count) {
        auto a = std::make_shared<std::vector<S>>(static_cast<std::size_t>(count));
        auto b = std::make_shared<std::vector<S>>(static_cast<std::size_t>(count));
        const auto& type = core::custom_datatype_of<S>();
        return {
            "custom",
            [a, &type, count](p2p::Communicator& c, int) {
                (void)c.send_custom(a->data(), count, type, 1, 1);
                (void)c.recv_custom(a->data(), count, type, 1, 2);
            },
            [b, &type, count](p2p::Communicator& c, int) {
                (void)c.recv_custom(b->data(), count, type, 0, 1);
                (void)c.send_custom(b->data(), count, type, 0, 2);
            },
        };
    }

    static Method packed(Count count) {
        auto a = std::make_shared<std::vector<S>>(static_cast<std::size_t>(count));
        auto b = std::make_shared<std::vector<S>>(static_cast<std::size_t>(count));
        auto buf_a =
            std::make_shared<ByteVec>(static_cast<std::size_t>(count * PackedPerElem));
        auto buf_b =
            std::make_shared<ByteVec>(static_cast<std::size_t>(count * PackedPerElem));
        const Count total = count * PackedPerElem;
        auto pack = [](std::vector<S>& v, ByteVec& buf, p2p::Communicator& c) {
            SimTime cost = 0.0;
            {
                const ScopedMeasure m(cost);
                std::byte* p = buf.data();
                for (auto& s : v) {
                    PackFn{}(s, p);
                    p += PackedPerElem;
                }
            }
            c.advance_time(cost);
        };
        auto unpack = [](std::vector<S>& v, const ByteVec& buf, p2p::Communicator& c) {
            SimTime cost = 0.0;
            {
                const ScopedMeasure m(cost);
                const std::byte* p = buf.data();
                for (auto& s : v) {
                    UnpackFn{}(s, p);
                    p += PackedPerElem;
                }
            }
            c.advance_time(cost);
        };
        return {
            "packed",
            [a, buf_a, total, pack, unpack](p2p::Communicator& c, int) {
                pack(*a, *buf_a, c);
                (void)c.send_bytes(buf_a->data(), total, 1, 1);
                (void)c.recv_bytes(buf_a->data(), total, 1, 2);
                unpack(*a, *buf_a, c);
            },
            [b, buf_b, total, pack, unpack](p2p::Communicator& c, int) {
                (void)c.recv_bytes(buf_b->data(), total, 0, 1);
                unpack(*b, *buf_b, c);
                pack(*b, *buf_b, c);
                (void)c.send_bytes(buf_b->data(), total, 0, 2);
            },
        };
    }

    static Method derived(Count count, dt::TypeRef type) {
        auto a = std::make_shared<std::vector<S>>(static_cast<std::size_t>(count));
        auto b = std::make_shared<std::vector<S>>(static_cast<std::size_t>(count));
        return {
            "rsmpi-ddt",
            [a, type, count](p2p::Communicator& c, int) {
                (void)c.isend(a->data(), count, type, 1, 1).wait();
                (void)c.irecv(a->data(), count, type, 1, 2).wait();
            },
            [b, type, count](p2p::Communicator& c, int) {
                (void)c.irecv(b->data(), count, type, 0, 1).wait();
                (void)c.isend(b->data(), count, type, 0, 2).wait();
            },
        };
    }
};

// Field (un)packers for each paper type.
struct PackSimple {
    void operator()(const core::StructSimple& s, std::byte* p) const {
        std::memcpy(p, &s.a, 12);
        std::memcpy(p + 12, &s.d, 8);
    }
};
struct UnpackSimple {
    void operator()(core::StructSimple& s, const std::byte* p) const {
        std::memcpy(&s.a, p, 12);
        std::memcpy(&s.d, p + 12, 8);
    }
};
struct PackNoGap {
    void operator()(const core::StructSimpleNoGap& s, std::byte* p) const {
        std::memcpy(p, &s, sizeof(s));
    }
};
struct UnpackNoGap {
    void operator()(core::StructSimpleNoGap& s, const std::byte* p) const {
        std::memcpy(&s, p, sizeof(s));
    }
};
struct PackStructVec {
    void operator()(const core::StructVec& s, std::byte* p) const {
        std::memcpy(p, &s.a, 12);
        std::memcpy(p + 12, &s.d, 8);
        std::memcpy(p + 20, s.data, sizeof(s.data));
    }
};
struct UnpackStructVec {
    void operator()(core::StructVec& s, const std::byte* p) const {
        std::memcpy(&s.a, p, 12);
        std::memcpy(&s.d, p + 12, 8);
        std::memcpy(s.data, p + 20, sizeof(s.data));
    }
};

using SimpleBench =
    StructBench<core::StructSimple, core::kScalarPack, PackSimple, UnpackSimple>;
using NoGapBench = StructBench<core::StructSimpleNoGap,
                               Count(sizeof(core::StructSimpleNoGap)), PackNoGap,
                               UnpackNoGap>;
using StructVecBench =
    StructBench<core::StructVec, core::kScalarPack + 4 * Count(core::kStructVecData),
                PackStructVec, UnpackStructVec>;

inline constexpr Count kStructVecPacked =
    core::kScalarPack + 4 * Count(core::kStructVecData); // 8212 B

} // namespace mpicd::bench
