// Figure 2: bandwidth of the double-vector type (sub-vector size 1024 B).
// The custom method wins at large sizes through memory regions (no pack
// copy); manual packing pays a full staging copy per side.
#include "rust_methods.hpp"

int main() {
    using namespace mpicd;
    using namespace mpicd::bench;
    const auto params = netsim::WireParams::from_env();
    constexpr Count kSub = 1024;

    Table table("Fig.2  double-vector bandwidth (MB/s), subvector 1 KiB", "size",
                {"custom", "packed", "bytes"});
    for (Count size = 1024; size <= (smoke_mode() ? Count(4096) : Count(1) << 23); size *= 2) {
        const int iters = iters_for(size);
        std::vector<double> row;
        row.push_back(bandwidth_MBps(
            size, measure(double_vec_custom(size, kSub), iters, params).mean()));
        row.push_back(bandwidth_MBps(
            size, measure(double_vec_packed(size, kSub), iters, params).mean()));
        row.push_back(
            bandwidth_MBps(size, measure(bytes_baseline(size), iters, params).mean()));
        table.add_row(size_label(size), row);
    }
    table.finish("fig02_double_vec_bw");
    return 0;
}
