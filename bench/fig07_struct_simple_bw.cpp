// Figure 7: bandwidth of the struct-simple type. The manual-pack series
// dips at 2^15 bytes — the eager->rendezvous switch inside the transport —
// while the custom series (IOV path) does not.
#include "rust_methods.hpp"

int main() {
    using namespace mpicd;
    using namespace mpicd::bench;
    const auto params = netsim::WireParams::from_env();
    const auto ddt = core::struct_simple_dt();

    Table table("Fig.7  struct-simple bandwidth (MB/s)", "size",
                {"custom", "packed", "rsmpi-ddt"});
    for (Count size = 256; size <= (smoke_mode() ? Count(1024) : Count(1) << 21); size *= 2) {
        const Count count = std::max<Count>(1, size / core::kScalarPack);
        const Count actual = count * core::kScalarPack;
        const int iters = iters_for(actual);
        std::vector<double> row;
        row.push_back(bandwidth_MBps(
            actual, measure(SimpleBench::custom(count), iters, params).mean()));
        row.push_back(bandwidth_MBps(
            actual, measure(SimpleBench::packed(count), iters, params).mean()));
        row.push_back(bandwidth_MBps(
            actual, measure(SimpleBench::derived(count, ddt), iters, params).mean()));
        table.add_row(size_label(size), row);
    }
    table.finish("fig07_struct_simple_bw");
    return 0;
}
