// Datapath memory ablation: the slab buffer pool on vs. off (MPICD_POOL),
// over a lossless and a lossy fabric (see docs/PERF.md §8).
//
// Reports, per {fabric, pool} phase, for a stream of pipelined rendezvous
// messages (generic datatype both sides, inorder=true):
//   - payload_allocs/msg: heap allocations the datapath performs for wire
//     buffers (pool misses + pool-off heap allocations, from PoolStats);
//   - total_allocs/msg: every operator-new call in the process (global
//     override below), bookkeeping included;
//   - pool_hit_pct: freelist hit rate (0 with the pool off);
//   - copy_amp: transport bytes memcpy'd per byte delivered.
//
// Hard assertions (exit 1), per the PR acceptance criteria:
//   - pool-on performs >= 5x fewer payload heap allocations per message;
//   - copy_amp improves pool-on vs. pool-off over the lossy fabric (the
//     retransmit queue shares slabs instead of deep-copying);
//   - the wire is byte-identical in both modes: every message's sender
//     fragment schedule (offset, length, running CRC of produced bytes)
//     and logical bytes_sent match pool-on vs. pool-off, on the lossless
//     AND the lossy fabric (retransmits resend recorded packets, so the
//     pack schedule is loss-independent);
//   - on the lossless fabric the receiver unpack schedule is identical in
//     both modes and strictly in-order (in-place unpack, no stash);
//   - every delivered payload is byte-identical to its source;
//   - the pool leak-checks to zero outstanding buffers after each phase.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "base/crc32.hpp"
#include "base/metrics.hpp"
#include "base/pool.hpp"
#include "common.hpp"
#include "netsim/fault.hpp"
#include "p2p/universe.hpp"
#include "ucx/worker.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator-new in the process, so the
// table's total_allocs/msg column shows the whole-process effect, not just
// the pool's own accounting.

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}

void* operator new(std::size_t n) {
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(n != 0 ? n : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mpicd {
namespace {

constexpr Count kMsgBytes = 96 * 1024;  // 6 fragments of 16 KiB each
constexpr Count kFragBytes = 16 * 1024;

netsim::WireParams bench_params() {
    netsim::WireParams p;
    p.eager_threshold = 1024;
    p.rndv_frag_size = kFragBytes;
    p.rto_us = 50.0;
    p.max_retries = 12;
    return p;
}

// Deterministic per-message source pattern, identical across phases.
ByteVec pattern(int msg) {
    ByteVec v(static_cast<std::size_t>(kMsgBytes));
    for (std::size_t k = 0; k < v.size(); ++k)
        v[k] = static_cast<std::byte>((static_cast<std::size_t>(msg) * 131 + k * 7 + 3) & 0xFF);
    return v;
}

// One (offset, len) callback invocation on either side of the wire.
struct SchedEntry {
    Count offset = 0;
    Count len = 0;
    bool operator==(const SchedEntry&) const = default;
};

// Recording generic datatype state: pack gathers from `src` and logs the
// call; unpack scatters into `dst` and logs the call. inorder=true, so the
// receive side exercises the in-place/stash machinery.
struct Rec {
    ConstBytes src;
    MutBytes dst;
    std::vector<SchedEntry> sched;
    std::uint32_t crc = 0; // running CRC over bytes in callback order
};

Status rec_start(void* ctx, const void*, Count, void** state) {
    *state = ctx;
    return Status::success;
}
Status rec_start_unpack(void* ctx, void*, Count, void** state) {
    *state = ctx;
    return Status::success;
}
Status rec_packed_size(void* state, Count* size) {
    auto* r = static_cast<Rec*>(state);
    *size = static_cast<Count>(r->src.empty() ? r->dst.size() : r->src.size());
    return Status::success;
}
Status rec_pack(void* state, Count offset, void* dst, Count dst_size, Count* used) {
    auto* r = static_cast<Rec*>(state);
    const Count total = static_cast<Count>(r->src.size());
    const Count n = std::min(dst_size, total - offset);
    std::memcpy(dst, r->src.data() + offset, static_cast<std::size_t>(n));
    r->sched.push_back({offset, n});
    r->crc = crc32(dst, static_cast<std::size_t>(n), r->crc);
    *used = n;
    return Status::success;
}
Status rec_unpack(void* state, Count offset, const void* src, Count src_size) {
    auto* r = static_cast<Rec*>(state);
    std::memcpy(r->dst.data() + offset, src, static_cast<std::size_t>(src_size));
    r->sched.push_back({offset, src_size});
    r->crc = crc32(src, static_cast<std::size_t>(src_size), r->crc);
    return Status::success;
}

ucx::GenericOps rec_ops() {
    ucx::GenericOps ops;
    ops.start_pack = rec_start;
    ops.packed_size = rec_packed_size;
    ops.pack = rec_pack;
    ops.start_unpack = rec_start_unpack;
    ops.unpack = rec_unpack;
    ops.inorder = true;
    return ops;
}

struct PhaseResult {
    double payload_allocs_per_msg = 0.0;
    double total_allocs_per_msg = 0.0;
    double hit_pct = 0.0;
    double copy_amp = 0.0;
    std::uint64_t bytes_sent = 0;
    std::vector<std::vector<SchedEntry>> send_sched; // per message
    std::vector<std::uint32_t> send_crc;
    std::vector<std::vector<SchedEntry>> recv_sched;
    std::vector<std::uint32_t> recv_crc;
    bool payload_ok = true;
};

PhaseResult run_phase(bool lossy, bool pool_on, int msgs, int warmup) {
    BufferPool& pool = BufferPool::instance();
    pool.set_enabled(pool_on);

    netsim::FaultConfig cfg;
    if (lossy) {
        cfg.seed = 0xDA7A;
        cfg.drop = 0.04;
        cfg.dup = 0.02;
        cfg.reorder = 0.02;
        cfg.corrupt = 0.02;
    }

    PhaseResult out;
    std::uint64_t allocs0 = 0, payload0 = 0, hits0 = 0, miss0 = 0;
    {
        p2p::Universe uni(2, bench_params(), cfg);
        for (int i = -warmup; i < msgs; ++i) {
            if (i == 0) {
                // Warmup filled the freelists: measure steady state only.
                metrics().reset();
                const PoolStats ps = pool.stats();
                payload0 = ps.misses + ps.heap_allocs;
                hits0 = ps.hits;
                miss0 = ps.misses;
                allocs0 = g_heap_allocs.load(std::memory_order_relaxed);
            }
            const ByteVec src = pattern(i < 0 ? msgs - i : i);
            ByteVec dst(src.size());
            Rec srec, rrec;
            srec.src = src;
            rrec.dst = dst;

            ucx::GenericDesc sdesc, rdesc;
            sdesc.ops = rec_ops();
            sdesc.ops.ctx = &srec;
            sdesc.send_buf = src.data();
            sdesc.count = 1;
            rdesc.ops = rec_ops();
            rdesc.ops.ctx = &rrec;
            rdesc.recv_buf = dst.data();
            rdesc.count = 1;

            const ucx::Tag tag = static_cast<ucx::Tag>(1000 + i);
            const auto rid = uni.worker(1).tag_recv(tag, ~ucx::Tag{0}, rdesc);
            const auto sid = uni.worker(0).tag_send(1, tag, sdesc);
            while (!uni.worker(0).is_complete(sid) ||
                   !uni.worker(1).is_complete(rid))
                uni.progress_all();
            const auto sc = uni.worker(0).take_completion(sid);
            const auto rc = uni.worker(1).take_completion(rid);
            if (!ok(sc.status) || !ok(rc.status)) {
                std::fprintf(stderr,
                             "ablation_datapath: message %d failed (%d/%d)\n",
                             i, static_cast<int>(sc.status),
                             static_cast<int>(rc.status));
                std::exit(1);
            }
            if (i >= 0) {
                if (dst != src) out.payload_ok = false;
                out.send_sched.push_back(std::move(srec.sched));
                out.send_crc.push_back(srec.crc);
                out.recv_sched.push_back(std::move(rrec.sched));
                out.recv_crc.push_back(rrec.crc);
            }
        }
        out.bytes_sent = uni.worker(0).stats().bytes_sent;
    }
    // Every packet, request and stash entry is destroyed with the universe:
    // the pool must account for zero live buffers.
    if (pool.outstanding() != 0) {
        std::fprintf(stderr, "ablation_datapath: pool leak: %llu outstanding\n",
                     static_cast<unsigned long long>(pool.outstanding()));
        std::exit(1);
    }
    const PoolStats ps = pool.stats();
    const double m = static_cast<double>(msgs);
    out.payload_allocs_per_msg =
        static_cast<double>(ps.misses + ps.heap_allocs - payload0) / m;
    out.total_allocs_per_msg =
        static_cast<double>(g_heap_allocs.load(std::memory_order_relaxed) -
                            allocs0) / m;
    const std::uint64_t hits = ps.hits - hits0;
    const std::uint64_t misses = ps.misses - miss0;
    out.hit_pct = hits + misses != 0
                      ? 100.0 * static_cast<double>(hits) /
                            static_cast<double>(hits + misses)
                      : 0.0;
    const auto copied = datapath::bytes_copied().load(std::memory_order_relaxed);
    const auto delivered =
        datapath::bytes_delivered().load(std::memory_order_relaxed);
    out.copy_amp = delivered != 0 ? static_cast<double>(copied) /
                                        static_cast<double>(delivered)
                                  : 0.0;
    pool.trim();
    return out;
}

void fail(const char* what) {
    std::fprintf(stderr, "ablation_datapath: ASSERTION FAILED: %s\n", what);
    std::exit(1);
}

int run() {
    const int msgs = bench::smoke_mode() ? 8 : 32;
    const int warmup = 2;

    bench::Table table(
        "Datapath memory ablation: slab pool on vs off "
        "(pipelined rendezvous, 96 KiB msgs, 16 KiB frags)",
        "phase",
        {"payload_allocs/msg", "total_allocs/msg", "pool_hit_pct", "copy_amp"});

    PhaseResult r[2][2]; // [lossy][pool_on]
    for (const bool lossy : {false, true}) {
        for (const bool pool_on : {false, true}) {
            auto& res = r[lossy ? 1 : 0][pool_on ? 1 : 0];
            res = run_phase(lossy, pool_on, msgs, warmup);
            char label[32];
            std::snprintf(label, sizeof(label), "%s/%s",
                          lossy ? "lossy" : "lossless",
                          pool_on ? "pool-on" : "pool-off");
            table.add_row(label,
                          {res.payload_allocs_per_msg, res.total_allocs_per_msg,
                           res.hit_pct, res.copy_amp});
            if (!res.payload_ok) fail("delivered payload differs from source");
        }
    }

    for (const int lossy : {0, 1}) {
        const PhaseResult& off = r[lossy][0];
        const PhaseResult& on = r[lossy][1];
        // Wire identity: the sender's fragment schedule and produced bytes
        // are the same with and without the pool, loss or no loss.
        if (off.send_sched != on.send_sched)
            fail("sender fragment schedule differs pool-on vs pool-off");
        if (off.send_crc != on.send_crc)
            fail("sender packed bytes differ pool-on vs pool-off");
        if (off.bytes_sent != on.bytes_sent)
            fail("logical bytes_sent differ pool-on vs pool-off");
    }
    {
        const PhaseResult& off = r[0][0];
        const PhaseResult& on = r[0][1];
        // Lossless: the receiver-side unpack schedule is deterministic and
        // must be identical and strictly in-order (in-place path, no stash).
        if (off.recv_sched != on.recv_sched || off.recv_crc != on.recv_crc)
            fail("lossless receiver unpack schedule differs pool-on vs off");
        for (const auto& sched : on.recv_sched) {
            Count expect = 0;
            for (const auto& e : sched) {
                if (e.offset != expect) fail("lossless unpack not in-order");
                expect += e.len;
            }
            if (expect != kMsgBytes) fail("lossless unpack incomplete");
        }
    }
    // >= 5x fewer datapath heap allocations per message with the pool on.
    for (const int lossy : {0, 1}) {
        const double off = r[lossy][0].payload_allocs_per_msg;
        const double on = r[lossy][1].payload_allocs_per_msg;
        if (on * 5.0 > off) fail("pool-on does not cut payload allocations 5x");
    }
    // The retransmit queue shares slabs instead of deep-copying: the lossy
    // fabric's copy amplification must drop with the pool on.
    if (r[1][1].copy_amp >= r[1][0].copy_amp)
        fail("copy_amp did not improve pool-on vs pool-off over lossy fabric");

    table.finish("ablation_datapath");
    std::printf("ablation_datapath: all datapath assertions passed\n");
    return 0;
}

} // namespace
} // namespace mpicd

int main() { return mpicd::run(); }
