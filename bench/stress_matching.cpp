// Tag-matching stress bench: cost of posting/matching against deep posted
// and unexpected queues, hashed TagMatcher vs the linear seed matcher.
//
// The JSON columns are SCANNED ENTRIES PER MATCH — a deterministic proxy
// for matching cost (exactly reproducible run to run, so the bench-smoke
// regression gate can hold it to a tight threshold). Wall-clock ns/match is
// printed to stdout for eyeballing but deliberately kept out of the JSON.
//
// Matches are issued in reverse posting order, the linear matcher's worst
// case: the wanted entry is always at the back of the scan, so the linear
// column grows linearly with depth while the hashed column stays flat (one
// mask group -> one bucket probe per match). The built-in acceptance
// checks at the bottom enforce exactly that: hashed within 1.2x from depth
// 16 to 1024, linear degraded by at least 5x.
//
// A final end-to-end section pushes many-tag traffic through a 4-rank
// universe so the worker-level "match/*" counters and the probe-length /
// latency histograms land in this artifact's metrics block.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common.hpp"
#include "ucx/matcher.hpp"

namespace {

using namespace mpicd;
using ucx::TagMatcher;

// Scanned entries per match and wall ns per match for one (mode, depth)
// posted-queue run: post `depth` exact-tag receives, then match all of
// them in reverse posting order.
struct Cost {
    double scanned_per_match = 0.0;
    double ns_per_match = 0.0;
};

Cost posted_cost(TagMatcher::Mode mode, int depth, int repeats) {
    Cost c;
    std::uint64_t matches = 0;
    const auto t0 = std::chrono::steady_clock::now();
    TagMatcher m(mode);
    for (int rep = 0; rep < repeats; ++rep) {
        for (int i = 0; i < depth; ++i)
            m.post_recv(static_cast<ucx::RequestId>(i + 1),
                        static_cast<ucx::Tag>(i), ~ucx::Tag{0});
        for (int i = depth - 1; i >= 0; --i) {
            const auto id = m.match_posted(static_cast<ucx::Tag>(i));
            if (!id || *id != static_cast<ucx::RequestId>(i + 1)) {
                std::fprintf(stderr, "stress_matching: wrong pairing\n");
                std::exit(1);
            }
            ++matches;
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    c.scanned_per_match =
        static_cast<double>(m.local_stats().scanned_entries) /
        static_cast<double>(matches);
    c.ns_per_match =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(matches);
    return c;
}

// Same shape for the unexpected queue: park `depth` messages with distinct
// tags, then take them in reverse arrival order with a full mask.
Cost unexpected_cost(TagMatcher::Mode mode, int depth, int repeats) {
    Cost c;
    std::uint64_t takes = 0;
    const auto t0 = std::chrono::steady_clock::now();
    TagMatcher m(mode);
    for (int rep = 0; rep < repeats; ++rep) {
        for (int i = 0; i < depth; ++i) {
            ucx::UnexpectedMsg u;
            u.tag = static_cast<ucx::Tag>(i);
            u.src = 0;
            m.add_unexpected(std::move(u));
        }
        for (int i = depth - 1; i >= 0; --i) {
            const auto msg =
                m.take_unexpected(static_cast<ucx::Tag>(i), ~ucx::Tag{0});
            if (!msg || msg->tag != static_cast<ucx::Tag>(i)) {
                std::fprintf(stderr, "stress_matching: wrong unexpected\n");
                std::exit(1);
            }
            ++takes;
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    c.scanned_per_match =
        static_cast<double>(m.local_stats().scanned_entries) /
        static_cast<double>(takes);
    c.ns_per_match =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(takes);
    return c;
}

} // namespace

int main() {
    using namespace mpicd;
    using namespace mpicd::bench;

    const int kDepths[] = {16, 64, 256, 1024};
    const std::size_t n_depths = bench_limit(2, 4);
    const int kRepeats = smoke_mode() ? 4 : 64;

    Table table("Tag matching stress: scanned entries per match, "
                "hashed vs linear",
                "depth",
                {"posted-hashed", "posted-linear", "unexp-hashed",
                 "unexp-linear"});

    std::vector<Cost> ph, pl;
    std::printf("%-12s %14s %14s %14s %14s\n", "depth",
                "posted-hash-ns", "posted-lin-ns", "unexp-hash-ns",
                "unexp-lin-ns");
    for (std::size_t d = 0; d < n_depths; ++d) {
        const int depth = kDepths[d];
        const Cost a = posted_cost(TagMatcher::Mode::hashed, depth, kRepeats);
        const Cost b = posted_cost(TagMatcher::Mode::linear, depth, kRepeats);
        const Cost e = unexpected_cost(TagMatcher::Mode::hashed, depth, kRepeats);
        const Cost f = unexpected_cost(TagMatcher::Mode::linear, depth, kRepeats);
        ph.push_back(a);
        pl.push_back(b);
        table.add_row(std::to_string(depth),
                      {a.scanned_per_match, b.scanned_per_match,
                       e.scanned_per_match, f.scanned_per_match});
        std::printf("%-12d %14.1f %14.1f %14.1f %14.1f\n", depth,
                    a.ns_per_match, b.ns_per_match, e.ns_per_match,
                    f.ns_per_match);
    }

    // End-to-end many-rank section: 4 ranks, every ordered pair exchanges
    // one message on each of 32 distinct tags, receives pre-posted so the
    // posted queues are deep while traffic flows. Populates the worker
    // "match/*" counters and the probe-length / latency histograms that
    // Table::finish embeds in the JSON artifact.
    {
        const int kRanks = smoke_mode() ? 4 : 16;
        const int kTags = smoke_mode() ? 8 : 64;
        p2p::Universe uni(kRanks, netsim::WireParams::from_env());
        std::vector<ByteVec> bufs;
        std::vector<p2p::Request> reqs;
        ByteVec src(512);
        std::memset(src.data(), 0xAB, src.size());
        for (int r = 0; r < kRanks; ++r)
            for (int s = 0; s < kRanks; ++s) {
                if (s == r) continue;
                for (int t = 0; t < kTags; ++t) {
                    bufs.emplace_back(src.size());
                    reqs.push_back(uni.comm(r).irecv_bytes(
                        bufs.back().data(), Count(src.size()), s, t));
                }
            }
        for (int s = 0; s < kRanks; ++s)
            for (int r = 0; r < kRanks; ++r) {
                if (s == r) continue;
                for (int t = 0; t < kTags; ++t)
                    reqs.push_back(uni.comm(s).isend_bytes(
                        src.data(), Count(src.size()), r, t));
            }
        if (p2p::wait_all(reqs) != Status::success) {
            std::fprintf(stderr, "stress_matching: end-to-end failed\n");
            return 1;
        }
        // Second wave with the sends ahead of the receives: messages park
        // in the unexpected queues, so the unexpected-dwell histogram
        // shows up in the artifact alongside probe length and latency.
        std::vector<p2p::Request> sends, recvs;
        for (int s = 0; s < kRanks; ++s)
            for (int t = 0; t < kTags; ++t)
                sends.push_back(uni.comm(s).isend_bytes(
                    src.data(), Count(src.size()), (s + 1) % kRanks, t));
        for (int i = 0; i < 4 * kRanks; ++i) uni.progress_all();
        for (int r = 0; r < kRanks; ++r)
            for (int t = 0; t < kTags; ++t) {
                bufs.emplace_back(src.size());
                recvs.push_back(uni.comm(r).irecv_bytes(
                    bufs.back().data(), Count(src.size()),
                    (r + kRanks - 1) % kRanks, t));
            }
        if (p2p::wait_all(sends) != Status::success ||
            p2p::wait_all(recvs) != Status::success) {
            std::fprintf(stderr, "stress_matching: unexpected wave failed\n");
            return 1;
        }
    }

    table.finish("stress_matching");

    // Acceptance checks (full mode only; smoke runs too few depths).
    if (n_depths == 4) {
        const double hashed_growth =
            ph.back().scanned_per_match / ph.front().scanned_per_match;
        const double linear_growth =
            pl.back().scanned_per_match / pl.front().scanned_per_match;
        std::printf("hashed growth 16->1024: %.3fx; linear: %.1fx\n",
                    hashed_growth, linear_growth);
        if (hashed_growth > 1.2) {
            std::fprintf(stderr,
                         "FAIL: hashed matching not flat (%.2fx > 1.2x)\n",
                         hashed_growth);
            return 1;
        }
        if (linear_growth < 5.0) {
            std::fprintf(stderr,
                         "FAIL: linear matching did not degrade (%.2fx < "
                         "5x) - is the depth sweep broken?\n",
                         linear_growth);
            return 1;
        }
    }
    return 0;
}
