// Figure 3: latency of the struct-vec type (Listing 6). The packed element
// is ~8 KiB; the derived-datatype baseline works because the array member
// is statically sized (the paper's point: make it a dynamic vector and
// only custom / manual packing still apply).
#include "rust_methods.hpp"

int main() {
    using namespace mpicd;
    using namespace mpicd::bench;
    const auto params = netsim::WireParams::from_env();
    const auto ddt = core::struct_vec_dt();

    Table table("Fig.3  struct-vec latency (us, one-way)", "size",
                {"custom", "packed", "rsmpi-ddt"});
    for (Count count = 1; count <= (smoke_mode() ? Count(4) : Count(256)); count *= 2) {
        const Count size = count * kStructVecPacked;
        const int iters = iters_for(size);
        std::vector<double> row;
        row.push_back(measure(StructVecBench::custom(count), iters, params).mean());
        row.push_back(measure(StructVecBench::packed(count), iters, params).mean());
        row.push_back(
            measure(StructVecBench::derived(count, ddt), iters, params).mean());
        table.add_row(size_label(size), row);
    }
    table.finish("fig03_struct_vec_latency");
    return 0;
}
