// Ablation A4: the cost of the `inorder` flag (paper Listing 2). A custom
// type that requires in-order fragments pins the rendezvous pipeline to a
// single network rail; with inorder=false the implementation stripes
// fragments across rails — the out-of-order optimization the paper says
// the flag "would inhibit ... in advanced implementations".
//
// Both directions use the generic_pipeline lowering so the transport
// drives the pack callbacks fragment by fragment.
#include <cstring>

#include "common.hpp"
#include "core/engine.hpp"

namespace {

using namespace mpicd;
using namespace mpicd::bench;

// A plain byte-stream custom type; `context` selects the inorder flag.
struct Stream {
    ByteVec data;
};

Status st_query(void*, const void* buf, Count count, Count* size) {
    *size = static_cast<Count>(static_cast<const Stream*>(buf)->data.size()) * count;
    return Status::success;
}
Status st_pack(void*, const void* buf, Count /*count*/, Count offset, void* dst,
               Count dst_size, Count* used) {
    const auto& d = static_cast<const Stream*>(buf)->data;
    const Count total = static_cast<Count>(d.size());
    const Count n = std::min(dst_size, total - offset);
    std::memcpy(dst, d.data() + offset, static_cast<std::size_t>(n));
    *used = n;
    return Status::success;
}
Status st_unpack(void*, void* buf, Count /*count*/, Count offset, const void* src,
                 Count src_size) {
    auto& d = static_cast<Stream*>(buf)->data;
    if (offset + src_size > static_cast<Count>(d.size())) return Status::err_unpack;
    std::memcpy(d.data() + offset, src, static_cast<std::size_t>(src_size));
    return Status::success;
}

core::CustomDatatype stream_type(bool inorder) {
    core::CustomCallbacks cb;
    cb.query = st_query;
    cb.pack = st_pack;
    cb.unpack = st_unpack;
    cb.inorder = inorder;
    core::CustomDatatype out;
    (void)core::CustomDatatype::create(cb, &out);
    return out;
}

Method stream_method(Count bytes, const core::CustomDatatype* type,
                     const char* name) {
    auto a = std::make_shared<Stream>();
    auto b = std::make_shared<Stream>();
    a->data.resize(static_cast<std::size_t>(bytes));
    b->data.resize(static_cast<std::size_t>(bytes));
    constexpr auto kLower = core::CustomLowering::generic_pipeline;
    return {
        name,
        [a, type](p2p::Communicator& c, int) {
            (void)c.isend_custom(a.get(), 1, *type, 1, 1, kLower).wait();
            (void)c.irecv_custom(a.get(), 1, *type, 1, 2, kLower).wait();
        },
        [b, type](p2p::Communicator& c, int) {
            (void)c.irecv_custom(b.get(), 1, *type, 0, 1, kLower).wait();
            (void)c.isend_custom(b.get(), 1, *type, 0, 2, kLower).wait();
        },
    };
}

} // namespace

int main() {
    const auto params = netsim::WireParams::from_env();
    static const auto ordered = stream_type(true);
    static const auto unordered = stream_type(false);

    Table table("Ablation A4: inorder flag vs out-of-order rail striping (MB/s, "
                "pipelined custom type)",
                "size", {"inorder=1", "inorder=0"});
    for (Count size = 256 * 1024; size <= (smoke_mode() ? Count(512) << 10 : Count(1) << 24); size *= 2) {
        const int iters = iters_for(size);
        std::vector<double> row;
        row.push_back(bandwidth_MBps(
            size, measure(stream_method(size, &ordered, "inorder"), iters, params)
                      .mean()));
        row.push_back(bandwidth_MBps(
            size, measure(stream_method(size, &unordered, "ooo"), iters, params)
                      .mean()));
        table.add_row(size_label(size), row);
    }
    table.finish("ablation_inorder");
    std::printf("(fragments of an inorder=0 type stripe across %d rails)\n",
                params.rails);
    return 0;
}
