// Shared benchmark harness: threaded two-rank ping-pong over the simulated
// fabric, reporting virtual-time latency / bandwidth exactly the way the
// paper's figures do (the mean of kRuns repetitions; RunningStats also
// carries min/max/stddev for error bars).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "base/stats.hpp"
#include "base/time.hpp"
#include "p2p/communicator.hpp"
#include "p2p/universe.hpp"

namespace mpicd::bench {

// Number of ping-pong iterations for a given message size: enough for a
// stable average, bounded so multi-megabyte points stay fast.
[[nodiscard]] inline int iters_for(Count bytes) {
    if (bytes <= 4 * 1024) return 100;
    if (bytes <= 64 * 1024) return 40;
    if (bytes <= 1024 * 1024) return 16;
    return 6;
}

inline constexpr int kWarmup = 3;
inline constexpr int kRuns = 4; // the paper reports the average of 4 runs

// One benchmarked method: per-iteration bodies for both ranks. The rank-0
// body must perform a send followed by a matching receive (ping-pong); the
// rank-1 body the mirror image.
struct Method {
    std::string name;
    std::function<void(p2p::Communicator&, int iter)> rank0;
    std::function<void(p2p::Communicator&, int iter)> rank1;
};

// Runs warmup + iters ping-pongs on two rank threads; returns the average
// one-way virtual time in microseconds.
[[nodiscard]] inline SimTime run_pingpong(p2p::Universe& uni, const Method& m,
                                          int warmup, int iters) {
    SimTime start = 0.0, stop = 0.0;
    std::thread t1([&] {
        auto& comm = uni.comm(1);
        for (int i = 0; i < warmup + iters; ++i) m.rank1(comm, i);
    });
    {
        auto& comm = uni.comm(0);
        for (int i = 0; i < warmup; ++i) m.rank0(comm, i);
        start = comm.now();
        for (int i = warmup; i < warmup + iters; ++i) m.rank0(comm, i);
        stop = comm.now();
    }
    t1.join();
    return (stop - start) / (2.0 * iters);
}

// Average of kRuns repetitions on a fresh universe each run.
[[nodiscard]] inline RunningStats measure(const Method& m, int iters,
                                          const netsim::WireParams& params) {
    RunningStats stats;
    for (int run = 0; run < kRuns; ++run) {
        p2p::Universe uni(2, params);
        stats.add(run_pingpong(uni, m, kWarmup, iters));
    }
    return stats;
}

[[nodiscard]] inline double bandwidth_MBps(Count bytes, SimTime oneway_us) {
    return oneway_us > 0 ? static_cast<double>(bytes) / oneway_us : 0.0;
}

// --- Table printing -----------------------------------------------------------

class Table {
public:
    Table(std::string title, std::string xlabel, std::vector<std::string> columns)
        : title_(std::move(title)), xlabel_(std::move(xlabel)),
          columns_(std::move(columns)) {}

    void add_row(const std::string& x, const std::vector<double>& values) {
        rows_.push_back({x, values});
    }

    void print() const {
        std::printf("\n# %s\n", title_.c_str());
        std::printf("%-14s", xlabel_.c_str());
        for (const auto& c : columns_) std::printf(" %16s", c.c_str());
        std::printf("\n");
        for (const auto& row : rows_) {
            std::printf("%-14s", row.x.c_str());
            for (const double v : row.values) std::printf(" %16.2f", v);
            std::printf("\n");
        }
        std::fflush(stdout);
    }

private:
    struct Row {
        std::string x;
        std::vector<double> values;
    };
    std::string title_, xlabel_;
    std::vector<std::string> columns_;
    std::vector<Row> rows_;
};

[[nodiscard]] inline std::string size_label(Count bytes) {
    char buf[32];
    if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0) {
        std::snprintf(buf, sizeof(buf), "%lldM", bytes / (1024 * 1024));
    } else if (bytes >= 1024 && bytes % 1024 == 0) {
        std::snprintf(buf, sizeof(buf), "%lldK", bytes / 1024);
    } else {
        std::snprintf(buf, sizeof(buf), "%lld", bytes);
    }
    return buf;
}

} // namespace mpicd::bench
