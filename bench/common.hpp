// Shared benchmark harness: threaded two-rank ping-pong over the simulated
// fabric, reporting virtual-time latency / bandwidth exactly the way the
// paper's figures do (the mean of kRuns repetitions; RunningStats also
// carries min/max/stddev for error bars).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "base/config.hpp"
#include "base/metrics.hpp"
#include "base/stats.hpp"
#include "base/time.hpp"
#include "p2p/communicator.hpp"
#include "p2p/universe.hpp"

namespace mpicd::bench {

// MPICD_BENCH_SMOKE=1 shrinks every bench to a seconds-scale sanity run
// (fewest sizes, one repetition, few iterations) — used by the bench-smoke
// ctest label to keep the binaries exercised without figure-quality cost.
[[nodiscard]] inline bool smoke_mode() {
    static const bool v = env_int_or("MPICD_BENCH_SMOKE", 0) != 0;
    return v;
}

// Number of ping-pong iterations for a given message size: enough for a
// stable average, bounded so multi-megabyte points stay fast.
[[nodiscard]] inline int iters_for(Count bytes) {
    if (smoke_mode()) return 2;
    if (bytes <= 4 * 1024) return 100;
    if (bytes <= 64 * 1024) return 40;
    if (bytes <= 1024 * 1024) return 16;
    return 6;
}

inline constexpr int kWarmup = 3;
inline constexpr int kRuns = 4; // the paper reports the average of 4 runs

[[nodiscard]] inline int runs_for() { return smoke_mode() ? 1 : kRuns; }

// How many entries of a size sweep to run: `first` under smoke, else all.
[[nodiscard]] inline std::size_t bench_limit(std::size_t first, std::size_t full) {
    return smoke_mode() ? std::min(first, full) : full;
}

// One benchmarked method: per-iteration bodies for both ranks. The rank-0
// body must perform a send followed by a matching receive (ping-pong); the
// rank-1 body the mirror image.
struct Method {
    std::string name;
    std::function<void(p2p::Communicator&, int iter)> rank0;
    std::function<void(p2p::Communicator&, int iter)> rank1;
};

// Runs warmup + iters ping-pongs on two rank threads; returns the average
// one-way virtual time in microseconds.
[[nodiscard]] inline SimTime run_pingpong(p2p::Universe& uni, const Method& m,
                                          int warmup, int iters) {
    SimTime start = 0.0, stop = 0.0;
    std::thread t1([&] {
        auto& comm = uni.comm(1);
        for (int i = 0; i < warmup + iters; ++i) m.rank1(comm, i);
    });
    {
        auto& comm = uni.comm(0);
        for (int i = 0; i < warmup; ++i) m.rank0(comm, i);
        start = comm.now();
        for (int i = warmup; i < warmup + iters; ++i) m.rank0(comm, i);
        stop = comm.now();
    }
    t1.join();
    return (stop - start) / (2.0 * iters);
}

// Average of runs_for() repetitions on a fresh universe each run.
[[nodiscard]] inline RunningStats measure(const Method& m, int iters,
                                          const netsim::WireParams& params) {
    RunningStats stats;
    for (int run = 0; run < runs_for(); ++run) {
        p2p::Universe uni(2, params);
        stats.add(run_pingpong(uni, m, kWarmup, iters));
    }
    return stats;
}

[[nodiscard]] inline double bandwidth_MBps(Count bytes, SimTime oneway_us) {
    return oneway_us > 0 ? static_cast<double>(bytes) / oneway_us : 0.0;
}

// --- Table printing -----------------------------------------------------------

class Table {
public:
    Table(std::string title, std::string xlabel, std::vector<std::string> columns)
        : title_(std::move(title)), xlabel_(std::move(xlabel)),
          columns_(std::move(columns)) {}

    void add_row(const std::string& x, const std::vector<double>& values) {
        rows_.push_back({x, values});
    }

    void print() const {
        std::printf("\n# %s\n", title_.c_str());
        std::printf("%-14s", xlabel_.c_str());
        for (const auto& c : columns_) std::printf(" %16s", c.c_str());
        std::printf("\n");
        for (const auto& row : rows_) {
            std::printf("%-14s", row.x.c_str());
            for (const double v : row.values) std::printf(" %16.2f", v);
            std::printf("\n");
        }
        std::fflush(stdout);
    }

    // Machine-readable companion to print(): BENCH_<name>.json in
    // MPICD_BENCH_JSON_DIR (default: the working directory).
    void write_json(const std::string& name) const {
        const std::string dir =
            env_string("MPICD_BENCH_JSON_DIR").value_or(std::string("."));
        const std::string path = dir + "/BENCH_" + name + ".json";
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
            return;
        }
        std::fprintf(f, "{\n  \"name\": \"%s\",\n  \"title\": \"%s\",\n",
                     name.c_str(), json_escape(title_).c_str());
        std::fprintf(f, "  \"xlabel\": \"%s\",\n  \"smoke\": %s,\n",
                     json_escape(xlabel_).c_str(), smoke_mode() ? "true" : "false");
        std::fprintf(f, "  \"columns\": [");
        for (std::size_t i = 0; i < columns_.size(); ++i) {
            std::fprintf(f, "%s\"%s\"", i ? ", " : "",
                         json_escape(columns_[i]).c_str());
        }
        std::fprintf(f, "],\n  \"rows\": [\n");
        for (std::size_t r = 0; r < rows_.size(); ++r) {
            std::fprintf(f, "    {\"x\": \"%s\", \"values\": [",
                         json_escape(rows_[r].x).c_str());
            for (std::size_t i = 0; i < rows_[r].values.size(); ++i) {
                std::fprintf(f, "%s%.6g", i ? ", " : "", rows_[r].values[i]);
            }
            std::fprintf(f, "]}%s\n", r + 1 < rows_.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n  \"metrics\": ");
        // Process-wide counter snapshot (pack path, worker protocol, fault
        // injection, trace bookkeeping) so every artifact carries the
        // observability context of the run that produced it.
        metrics().write_json(f, 2);
        // Copy amplification of the whole run: transport memcpy'd bytes per
        // byte delivered to a receiver (see docs/PERF.md §8). 0 when the
        // bench delivered nothing (send-only or pure-pack benches).
        std::uint64_t copied = 0, delivered = 0;
        for (const auto& s : metrics().snapshot()) {
            if (s.group != "datapath") continue;
            if (s.name == "bytes_copied") copied = s.value;
            if (s.name == "bytes_delivered") delivered = s.value;
        }
        const double copy_amp =
            delivered != 0
                ? static_cast<double>(copied) / static_cast<double>(delivered)
                : 0.0;
        std::fprintf(f, ",\n  \"derived\": {\"copy_amp\": %.6g}", copy_amp);
        std::fprintf(f, "\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
    }

    // Standard epilogue for every bench: human table, JSON artifact, and —
    // under MPICD_PACK_STATS=1 — the pack-path counters accumulated over
    // the whole process.
    void finish(const std::string& name) const {
        print();
        write_json(name);
        if (env_int_or("MPICD_PACK_STATS", 0) != 0) pack_stats().print(stdout);
    }

private:
    static std::string json_escape(const std::string& s) {
        std::string out;
        out.reserve(s.size());
        for (const char c : s) {
            if (c == '"' || c == '\\') out.push_back('\\');
            if (c == '\n') {
                out += "\\n";
                continue;
            }
            out.push_back(c);
        }
        return out;
    }

    struct Row {
        std::string x;
        std::vector<double> values;
    };
    std::string title_, xlabel_;
    std::vector<std::string> columns_;
    std::vector<Row> rows_;
};

[[nodiscard]] inline std::string size_label(Count bytes) {
    char buf[32];
    if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0) {
        std::snprintf(buf, sizeof(buf), "%lldM", bytes / (1024 * 1024));
    } else if (bytes >= 1024 && bytes % 1024 == 0) {
        std::snprintf(buf, sizeof(buf), "%lldK", bytes / 1024);
    } else {
        std::snprintf(buf, sizeof(buf), "%lld", bytes);
    }
    return buf;
}

} // namespace mpicd::bench
