// Figure 4: bandwidth of the struct-vec type.
#include "rust_methods.hpp"

int main() {
    using namespace mpicd;
    using namespace mpicd::bench;
    const auto params = netsim::WireParams::from_env();
    const auto ddt = core::struct_vec_dt();

    Table table("Fig.4  struct-vec bandwidth (MB/s)", "size",
                {"custom", "packed", "rsmpi-ddt"});
    for (Count count = 4; count <= (smoke_mode() ? Count(16) : Count(512)); count *= 2) {
        const Count size = count * kStructVecPacked;
        const int iters = iters_for(size);
        std::vector<double> row;
        row.push_back(bandwidth_MBps(
            size, measure(StructVecBench::custom(count), iters, params).mean()));
        row.push_back(bandwidth_MBps(
            size, measure(StructVecBench::packed(count), iters, params).mean()));
        row.push_back(bandwidth_MBps(
            size, measure(StructVecBench::derived(count, ddt), iters, params).mean()));
        table.add_row(size_label(size), row);
    }
    table.finish("fig04_struct_vec_bw");
    return 0;
}
