// Figure 5: latency of the struct-simple type (Listing 7). The interior
// gap forces the derived-datatype engine into per-element two-segment
// copies, so the baseline is much slower than custom / manual packing.
#include "rust_methods.hpp"

int main() {
    using namespace mpicd;
    using namespace mpicd::bench;
    const auto params = netsim::WireParams::from_env();
    const auto ddt = core::struct_simple_dt();

    Table table("Fig.5  struct-simple latency (us, one-way)", "size",
                {"custom", "packed", "rsmpi-ddt"});
    for (Count count = 1; count <= (smoke_mode() ? Count(16) : Count(1) << 15); count *= 4) {
        const Count size = count * core::kScalarPack;
        const int iters = iters_for(size);
        std::vector<double> row;
        row.push_back(measure(SimpleBench::custom(count), iters, params).mean());
        row.push_back(measure(SimpleBench::packed(count), iters, params).mean());
        row.push_back(measure(SimpleBench::derived(count, ddt), iters, params).mean());
        table.add_row(size_label(size), row);
    }
    table.finish("fig05_struct_simple_latency");
    return 0;
}
