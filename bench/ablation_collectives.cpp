// Ablation A8: flat vs hierarchical collectives on a two-level fabric.
//
// 12 ranks, 3 per node (4 nodes), with an inter-node plane ~10x slower
// than the intra-node plane. The node count is deliberately NOT aligned
// with the binomial trees' power-of-two structure: with aligned nodes a
// contiguous binomial tree is already nearly hierarchical, so the ragged
// layout is where leader-based routing actually pays. Each (op, size,
// algo) cell is a deterministic virtual-time measurement — the simulation
// has no noise, so the speedup column is exact.
//
// The bench is also a gate: hierarchical allreduce and allgatherv_bytes
// must beat their flat counterparts at the largest measured size (that is
// the point of the topology model), and it exits nonzero otherwise —
// making the bench-smoke ctest leg a structural regression check, not
// just a perf one. Mid-size rows are reported ungated on purpose: a
// leader superblock can cross the eager->rendezvous threshold that the
// per-rank flat messages stay under (3 x 16K > 32K), and the resulting
// dip is a real property of the protocol switch, not a regression (the
// paper discusses the same boundary dip for manual packing).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "common.hpp"
#include "p2p/coll/topology.hpp"
#include "p2p/coll/vcoll.hpp"
#include "p2p/collectives.hpp"

namespace {

using namespace mpicd;
using namespace mpicd::bench;

constexpr int kRanks = 12;
constexpr int kRanksPerNode = 3;

netsim::WireParams two_level_params() {
    netsim::WireParams p;
    p.ranks_per_node = kRanksPerNode;
    p.inter_latency_us = 15.0;
    p.inter_bandwidth_Bpus = 1250.0; // 1.25 GB/s vs 12.5 GB/s intra
    return p;
}

enum class Op { bcast, gather, allreduce, allgatherv };

const char* op_name(Op op) {
    switch (op) {
        case Op::bcast: return "bcast";
        case Op::gather: return "gather";
        case Op::allreduce: return "allreduce";
        default: return "allgatherv";
    }
}

// One collective, executed by rank `r` of `comm` with `nbytes` of payload
// per rank. Buffers live in the caller (per-thread).
Status run_once(Op op, p2p::Communicator& comm, std::vector<std::byte>& buf,
                     std::vector<std::byte>& big,
                     std::span<const Count> counts, std::span<const Count> displs) {
    const Count n = static_cast<Count>(buf.size());
    switch (op) {
        case Op::bcast:
            return p2p::bcast_bytes(comm, buf.data(), n, 0);
        case Op::gather:
            return p2p::gather_bytes(comm, buf.data(), n,
                                     comm.rank() == 0 ? big.data() : nullptr, 0);
        case Op::allreduce:
            return p2p::allreduce(comm, reinterpret_cast<double*>(buf.data()),
                                  n / static_cast<Count>(sizeof(double)),
                                  p2p::ReduceOp::sum);
        default:
            return p2p::coll::allgatherv_bytes(comm, buf.data(), n, big.data(),
                                               counts, displs);
    }
}

// Virtual time per operation: every rank iterates the same collective and
// records its own elapsed virtual time; the slowest rank defines the cost
// (a root that fires its sends and returns early has not finished the
// collective in any useful sense). One warmup iteration doubles as the
// entry synchronizer.
SimTime measure_op(Op op, std::size_t nbytes, p2p::coll::Algo algo) {
    p2p::coll::set_algo_override(algo);
    p2p::Universe uni(kRanks, two_level_params());
    const int iters = smoke_mode() ? 2 : 8;
    const std::vector<Count> counts(kRanks, static_cast<Count>(nbytes));
    std::vector<Count> displs(kRanks);
    for (int r = 0; r < kRanks; ++r)
        displs[static_cast<std::size_t>(r)] =
            static_cast<Count>(static_cast<std::size_t>(r) * nbytes);

    std::atomic<bool> failed{false};
    SimTime elapsed[kRanks] = {};
    auto body = [&](int r) {
        auto& comm = uni.comm(r);
        std::vector<std::byte> buf(nbytes, std::byte{1});
        std::vector<std::byte> big(nbytes * kRanks);
        auto once = [&] {
            return run_once(op, comm, buf, big, counts, displs);
        };
        if (!ok(once())) failed.store(true);
        const SimTime t0 = comm.now();
        for (int i = 0; i < iters; ++i)
            if (!ok(once())) failed.store(true);
        elapsed[r] = comm.now() - t0;
    };
    std::vector<std::thread> threads;
    for (int r = 1; r < kRanks; ++r) threads.emplace_back(body, r);
    body(0);
    for (auto& t : threads) t.join();
    p2p::coll::set_algo_override(std::nullopt);
    if (failed.load()) {
        std::fprintf(stderr, "FAIL: %s/%zuB did not complete cleanly\n",
                     op_name(op), nbytes);
        std::exit(1);
    }
    SimTime worst = 0.0;
    for (const SimTime e : elapsed) worst = std::max(worst, e);
    return worst / iters;
}

} // namespace

int main() {
    using namespace mpicd;
    using namespace mpicd::bench;

    const std::size_t sizes[] = {1024, 16 * 1024, 256 * 1024};
    constexpr std::size_t nsizes = 3;
    // Smoke runs only the largest size: that is the row the gate checks
    // (the hier advantage there is structural — fewer bytes over the
    // shared node uplinks — while the 1K rows are latency-bound with thin,
    // scheduling-sensitive margins).
    const std::size_t first_size = smoke_mode() ? nsizes - 1 : 0;
    const Op ops[] = {Op::bcast, Op::gather, Op::allreduce, Op::allgatherv};

    Table table("Ablation A8: flat vs hierarchical collectives "
                "(12 ranks, 3 per node, slow inter-node plane)",
                "op/size", {"flat_us", "hier_us", "speedup"});

    bool gate_ok = true;
    for (const Op op : ops) {
        for (std::size_t s = first_size; s < nsizes; ++s) {
            const SimTime flat = measure_op(op, sizes[s], p2p::coll::Algo::flat);
            const SimTime hier = measure_op(op, sizes[s], p2p::coll::Algo::hier);
            const double speedup = hier > 0.0 ? flat / hier : 0.0;
            table.add_row(std::string(op_name(op)) + "/" + size_label(static_cast<Count>(sizes[s])),
                          {flat, hier, speedup});
            // The gate: the two collectives whose hierarchical variants
            // restructure the inter-node traffic pattern must win at the
            // largest size (see the header comment for why mid sizes may
            // legitimately dip at the eager->rendezvous boundary).
            if ((op == Op::allreduce || op == Op::allgatherv) &&
                s + 1 == nsizes && !(hier < flat))
                gate_ok = false;
        }
    }

    table.finish("ablation_collectives");
    if (!gate_ok) {
        std::fprintf(stderr, "FAIL: hierarchical allreduce/allgatherv did not "
                             "beat flat on the two-level fabric\n");
        return 1;
    }
    return 0;
}
