// Ablation A8: flat vs hierarchical collectives on a two-level fabric.
//
// 12 ranks, 3 per node (4 nodes), with an inter-node plane ~10x slower
// than the intra-node plane. The node count is deliberately NOT aligned
// with the binomial trees' power-of-two structure: with aligned nodes a
// contiguous binomial tree is already nearly hierarchical, so the ragged
// layout is where leader-based routing actually pays. Each (op, size,
// algo) cell is a deterministic virtual-time measurement — the simulation
// has no noise, so the speedup column is exact.
//
// The bench is also a gate: hierarchical allreduce and allgatherv_bytes
// must beat their flat counterparts at the largest measured size (that is
// the point of the topology model), and it exits nonzero otherwise —
// making the bench-smoke ctest leg a structural regression check, not
// just a perf one. Mid-size rows are reported ungated on purpose: a
// leader superblock can cross the eager->rendezvous threshold that the
// per-rank flat messages stay under (3 x 16K > 32K), and the resulting
// dip is a real property of the protocol switch, not a regression (the
// paper discusses the same boundary dip for manual packing).
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "base/metrics.hpp"
#include "base/trace.hpp"
#include "common.hpp"
#include "netsim/fault.hpp"
#include "p2p/coll/topology.hpp"
#include "p2p/coll/vcoll.hpp"
#include "p2p/collectives.hpp"

namespace {

using namespace mpicd;
using namespace mpicd::bench;

constexpr int kRanks = 12;
constexpr int kRanksPerNode = 3;

netsim::WireParams two_level_params() {
    netsim::WireParams p;
    p.ranks_per_node = kRanksPerNode;
    p.inter_latency_us = 15.0;
    p.inter_bandwidth_Bpus = 1250.0; // 1.25 GB/s vs 12.5 GB/s intra
    return p;
}

enum class Op { bcast, gather, allreduce, allgatherv };

const char* op_name(Op op) {
    switch (op) {
        case Op::bcast: return "bcast";
        case Op::gather: return "gather";
        case Op::allreduce: return "allreduce";
        default: return "allgatherv";
    }
}

// One collective, executed by rank `r` of `comm` with `nbytes` of payload
// per rank. Buffers live in the caller (per-thread).
Status run_once(Op op, p2p::Communicator& comm, std::vector<std::byte>& buf,
                     std::vector<std::byte>& big,
                     std::span<const Count> counts, std::span<const Count> displs) {
    const Count n = static_cast<Count>(buf.size());
    switch (op) {
        case Op::bcast:
            return p2p::bcast_bytes(comm, buf.data(), n, 0);
        case Op::gather:
            return p2p::gather_bytes(comm, buf.data(), n,
                                     comm.rank() == 0 ? big.data() : nullptr, 0);
        case Op::allreduce:
            return p2p::allreduce(comm, reinterpret_cast<double*>(buf.data()),
                                  n / static_cast<Count>(sizeof(double)),
                                  p2p::ReduceOp::sum);
        default:
            return p2p::coll::allgatherv_bytes(comm, buf.data(), n, big.data(),
                                               counts, displs);
    }
}

p2p::coll::Fam fam_of(Op op) {
    switch (op) {
        case Op::bcast: return p2p::coll::Fam::bcast;
        case Op::gather: return p2p::coll::Fam::gather;
        case Op::allreduce: return p2p::coll::Fam::allreduce;
        default: return p2p::coll::Fam::allgatherv;
    }
}

// One measured cell: virtual time per op plus the coll/* and wire/*
// observability columns accumulated over the cell's iterations.
struct Cell {
    SimTime per_op_us = 0.0;
    double cp_p99_us = 0.0;     // p99 of coll/op_latency_ns_<fam>_<algo>
    double uplink_us = 0.0;     // wire/uplink_wait_ns total per iteration
};

// Virtual time per operation: every rank iterates the same collective and
// records its own elapsed virtual time; the slowest rank defines the cost
// (a root that fires its sends and returns early has not finished the
// collective in any useful sense). One warmup iteration doubles as the
// entry synchronizer.
Cell measure_op(Op op, std::size_t nbytes, p2p::coll::Algo algo) {
    p2p::coll::set_algo_override(algo);
    // Per-cell metrics window, so the op-latency percentile and the
    // uplink-wait total below describe exactly this (op, size, algo).
    metrics().reset();
    p2p::Universe uni(kRanks, two_level_params());
    const int iters = smoke_mode() ? 2 : 8;
    const std::vector<Count> counts(kRanks, static_cast<Count>(nbytes));
    std::vector<Count> displs(kRanks);
    for (int r = 0; r < kRanks; ++r)
        displs[static_cast<std::size_t>(r)] =
            static_cast<Count>(static_cast<std::size_t>(r) * nbytes);

    std::atomic<bool> failed{false};
    SimTime elapsed[kRanks] = {};
    auto body = [&](int r) {
        auto& comm = uni.comm(r);
        std::vector<std::byte> buf(nbytes, std::byte{1});
        std::vector<std::byte> big(nbytes * kRanks);
        auto once = [&] {
            return run_once(op, comm, buf, big, counts, displs);
        };
        if (!ok(once())) failed.store(true);
        const SimTime t0 = comm.now();
        for (int i = 0; i < iters; ++i)
            if (!ok(once())) failed.store(true);
        elapsed[r] = comm.now() - t0;
    };
    std::vector<std::thread> threads;
    for (int r = 1; r < kRanks; ++r) threads.emplace_back(body, r);
    body(0);
    for (auto& t : threads) t.join();
    p2p::coll::set_algo_override(std::nullopt);
    if (failed.load()) {
        std::fprintf(stderr, "FAIL: %s/%zuB did not complete cleanly\n",
                     op_name(op), nbytes);
        std::exit(1);
    }
    SimTime worst = 0.0;
    for (const SimTime e : elapsed) worst = std::max(worst, e);

    Cell cell;
    cell.per_op_us = worst / iters;
    const std::string lat_name =
        std::string("op_latency_ns_") + p2p::coll::fam_name(fam_of(op)) + "_" +
        p2p::coll::algo_name(algo);
    for (const auto& h : metrics().hist_snapshot()) {
        if (h.group == "coll" && h.name == lat_name)
            cell.cp_p99_us = h.snap.percentile(99.0) / 1000.0;
        // Uplink queuing is accumulated over the warmup + measured ops of
        // all ranks; normalize to one iteration (warmup included — the
        // fabric is deterministic, every iteration queues identically).
        if (h.group == "wire" && h.name == "uplink_wait_ns")
            cell.uplink_us = static_cast<double>(h.snap.sum) / 1000.0 /
                             (iters + 1);
    }
    return cell;
}

} // namespace

int main() {
    using namespace mpicd;
    using namespace mpicd::bench;

    const std::size_t sizes[] = {1024, 16 * 1024, 256 * 1024};
    constexpr std::size_t nsizes = 3;
    // Smoke runs only the largest size: that is the row the gate checks
    // (the hier advantage there is structural — fewer bytes over the
    // shared node uplinks — while the 1K rows are latency-bound with thin,
    // scheduling-sensitive margins).
    const std::size_t first_size = smoke_mode() ? nsizes - 1 : 0;
    const Op ops[] = {Op::bcast, Op::gather, Op::allreduce, Op::allgatherv};

    // hier_cp_p99_us: p99 of the per-rank op-latency histogram for the
    // hierarchical cell (the cross-rank critical path as the slowest rank
    // experienced it); hier_uplink_us: virtual time the cell's transfers
    // spent queued behind each other on the shared node-pair uplinks, per
    // iteration. Together they decompose a hier win into "fewer uplink
    // messages" vs "less uplink queuing" (tools/coll_analyze.py gives the
    // per-op version of the same split).
    Table table("Ablation A8: flat vs hierarchical collectives "
                "(12 ranks, 3 per node, slow inter-node plane)",
                "op/size",
                {"flat_us", "hier_us", "speedup", "hier_cp_p99_us",
                 "hier_uplink_us"});

    bool gate_ok = true;
    SimTime allreduce_hier_top = 0.0;
    for (const Op op : ops) {
        for (std::size_t s = first_size; s < nsizes; ++s) {
            const Cell flat = measure_op(op, sizes[s], p2p::coll::Algo::flat);
            const Cell hier = measure_op(op, sizes[s], p2p::coll::Algo::hier);
            const double speedup =
                hier.per_op_us > 0.0 ? flat.per_op_us / hier.per_op_us : 0.0;
            table.add_row(std::string(op_name(op)) + "/" + size_label(static_cast<Count>(sizes[s])),
                          {flat.per_op_us, hier.per_op_us, speedup,
                           hier.cp_p99_us, hier.uplink_us});
            // The gate: the two collectives whose hierarchical variants
            // restructure the inter-node traffic pattern must win at the
            // largest size (see the header comment for why mid sizes may
            // legitimately dip at the eager->rendezvous boundary).
            if ((op == Op::allreduce || op == Op::allgatherv) &&
                s + 1 == nsizes && !(hier.per_op_us < flat.per_op_us))
                gate_ok = false;
            if (op == Op::allreduce && s + 1 == nsizes)
                allreduce_hier_top = hier.per_op_us;
        }
    }

    table.finish("ablation_collectives");
    if (!gate_ok) {
        std::fprintf(stderr, "FAIL: hierarchical allreduce/allgatherv did not "
                             "beat flat on the two-level fabric\n");
        return 1;
    }

    // Pure-observer gate: re-measure the largest hierarchical allreduce
    // with tracing ON. The instrumentation (coll.* instants, MsgScope
    // stamping, uplink-wait instants) must not perturb virtual time by
    // more than 2% — the envelope docs/OBSERVABILITY.md promises. Like
    // bench_compare, this is a perf gate that only holds on a lossless
    // fabric: with MPICD_FAULT_* armed the two universes draw different
    // fault sequences (packet order is thread-schedule dependent), so in
    // the lossy matrix legs the delta is reported but not gated.
    const bool lossy_env = netsim::FaultConfig::from_env().any_random();
    trace::set_enabled(true);
    trace::reset();
    const Cell traced =
        measure_op(Op::allreduce, sizes[nsizes - 1], p2p::coll::Algo::hier);
    trace::set_enabled(false);
    trace::reset();
    const double rel =
        allreduce_hier_top > 0.0
            ? std::fabs(traced.per_op_us - allreduce_hier_top) /
                  allreduce_hier_top
            : 0.0;
    std::printf("\ntracing overhead (allreduce/%s hier): off=%.2fus "
                "on=%.2fus delta=%.2f%%%s\n",
                size_label(static_cast<Count>(sizes[nsizes - 1])).c_str(),
                allreduce_hier_top, traced.per_op_us, rel * 100.0,
                lossy_env ? " (not gated: fault injection active)" : "");
    if (rel > 0.02 && !lossy_env) {
        std::fprintf(stderr, "FAIL: tracing-on virtual time deviates %.2f%% "
                             "(> 2%%) from tracing-off\n", rel * 100.0);
        return 1;
    }
    return 0;
}
