// Figure 9: Python ping-pong with a complex user object holding multiple
// 128-KiB arrays summing to the x-axis size (paper §V-B case 2).
#include "rust_methods.hpp"
#include "pysim/mpi4py_sim.hpp"

namespace {

using namespace mpicd;
using namespace mpicd::bench;
using pysim::PyValue;
using pysim::PyXfer;

constexpr Count kChunk = 128 * 1024;

PyValue complex_object(Count total_bytes) {
    pysim::PyDict d;
    d.emplace_back("kind", PyValue("composite"));
    d.emplace_back("version", PyValue(3));
    pysim::PyList arrays;
    const Count n = std::max<Count>(1, total_bytes / kChunk);
    for (Count i = 0; i < n; ++i) {
        arrays.emplace_back(pysim::NdArray::pattern(
            pysim::DType::u8, {kChunk}, static_cast<std::uint32_t>(i + 1)));
    }
    d.emplace_back("chunks", PyValue(std::move(arrays)));
    return PyValue(std::move(d));
}

Method pickle_method(Count total, PyXfer xfer) {
    auto obj = std::make_shared<PyValue>(complex_object(total));
    auto echo = std::make_shared<PyValue>();
    pysim::PyXferOptions opts;
    opts.method = xfer;
    return {
        to_cstring(xfer),
        [obj, opts](p2p::Communicator& c, int) {
            (void)pysim::send_pyobj(c, *obj, 1, 1, opts);
            PyValue back;
            (void)pysim::recv_pyobj(c, &back, 1, 2, opts);
        },
        [echo, opts](p2p::Communicator& c, int) {
            (void)pysim::recv_pyobj(c, echo.get(), 0, 1, opts);
            (void)pysim::send_pyobj(c, *echo, 0, 2, opts);
        },
    };
}

} // namespace

int main() {
    const auto params = netsim::WireParams::from_env();
    Table table("Fig.9  pickle ping-pong, complex object of 128 KiB arrays (MB/s)",
                "size", {"roofline", "pickle-basic", "pickle-oob", "pickle-oob-cdt"});
    for (Count size = kChunk; size <= (smoke_mode() ? kChunk * 2 : Count(1) << 24); size *= 2) {
        const int iters = std::max(4, iters_for(size) / 2);
        std::vector<double> row;
        row.push_back(
            bandwidth_MBps(size, measure(bytes_baseline(size), iters, params).mean()));
        for (const auto xfer :
             {PyXfer::basic, PyXfer::oob_multi, PyXfer::oob_cdt}) {
            row.push_back(bandwidth_MBps(
                size, measure(pickle_method(size, xfer), iters, params).mean()));
        }
        table.add_row(size_label(size), row);
    }
    table.finish("fig09_pickle_complex_object");
    return 0;
}
