// Ablation: the pack-plan compiler and parallel pack engine.
//
// Host-measured pack throughput (MB/s, pack + unpack round trip verified
// byte-identical) for two shapes the paper leans on:
//   struct-simple  the Fig. 5 gap struct — two segments ({0,12} {16,8})
//                  per 24-byte element, the worst case for the generic
//                  per-segment convertor loop;
//   NAS_LU_y       the DDTBench strided vector — 40-byte runs with a
//                  constant stride, where one fused plan instruction
//                  covers the whole message.
// Three paths per shape: the generic per-segment loop, the compiled plan,
// and the plan with the parallel engine (PackMode::parallel). On a
// single-core host the parallel column degenerates to serial; set
// MPICD_PAR_PACK_THREADS on multicore hardware to see the partitioned
// speedup.
//
// A second table reports scatter-gather entry counts for the MILC region
// kernel at both granularities, before and after the coalescing pass, with
// the gathered byte totals to show coalescing never changes delivered
// bytes.
#include <cstdlib>
#include <cstring>

#include "common.hpp"
#include "core/paper_types.hpp"
#include "ddtbench/kernel.hpp"
#include "dt/convertor.hpp"
#include "dt/pack_plan.hpp"
#include "dt/par_pack.hpp"

using namespace mpicd;
using namespace mpicd::bench;

namespace {

// MB/s over `reps` pack_all calls of `mode`; aborts on any status failure.
double pack_MBps(const dt::TypeRef& type, const void* buf, Count count, MutBytes dst,
                 dt::PackMode mode, int reps) {
    const Count total = type->size() * count;
    HostTimer t;
    for (int r = 0; r < reps; ++r) {
        Count used = 0;
        if (dt::Convertor::pack_all(type, buf, count, dst, &used, mode) !=
                Status::success ||
            used != total) {
            std::fprintf(stderr, "ablation_pack_plan: pack failed\n");
            std::exit(1);
        }
    }
    const double us = t.elapsed_us();
    return us > 0 ? static_cast<double>(total) * reps / us : 0.0;
}

void verify_identical(const dt::TypeRef& type, const void* buf, Count count) {
    const Count total = type->size() * count;
    ByteVec a(static_cast<std::size_t>(total)), b(a.size()), c(a.size());
    Count used = 0;
    if (dt::Convertor::pack_all(type, buf, count, a, &used, dt::PackMode::generic) !=
            Status::success ||
        dt::Convertor::pack_all(type, buf, count, b, &used, dt::PackMode::plan) !=
            Status::success ||
        dt::Convertor::pack_all(type, buf, count, c, &used,
                                dt::PackMode::parallel) != Status::success ||
        std::memcmp(a.data(), b.data(), a.size()) != 0 ||
        std::memcmp(a.data(), c.data(), a.size()) != 0) {
        std::fprintf(stderr, "ablation_pack_plan: plan/parallel output differs "
                             "from generic\n");
        std::exit(1);
    }
}

struct Shape {
    const char* name;
    dt::TypeRef type;
    ByteVec buf; // count * extent bytes, filled with a pattern
    Count count = 0;
};

Shape make_struct_simple(Count target_packed) {
    Shape s;
    s.name = "struct";
    s.type = core::struct_simple_dt();
    s.count = std::max<Count>(1, target_packed / core::kScalarPack);
    s.buf.resize(static_cast<std::size_t>(s.count * s.type->extent()));
    for (std::size_t i = 0; i < s.buf.size(); ++i)
        s.buf[i] = static_cast<std::byte>(i * 131u + 17u);
    return s;
}

Shape make_nas_lu_y(Count target_packed) {
    // One element: ny runs of 5 doubles strided nx*5 doubles apart — the
    // NAS_LU_y face pattern (fixed x plane of an ny x nx grid of 5-vectors).
    constexpr Count kNx = 32;
    const Count ny = std::max<Count>(1, target_packed / (5 * 8));
    Shape s;
    s.name = "nas_lu_y";
    auto t = dt::Datatype::vector(ny, 5, kNx * 5, dt::type_double());
    (void)t->commit();
    s.type = t;
    s.count = 1;
    s.buf.resize(static_cast<std::size_t>(s.type->extent()));
    for (std::size_t i = 0; i < s.buf.size(); ++i)
        s.buf[i] = static_cast<std::byte>(i * 73u + 5u);
    return s;
}

} // namespace

int main() {
    std::printf("pack-plan ablation: %d pool worker(s), parallel threshold %lld "
                "bytes, MPICD_PACK_PLAN=%d\n",
                dt::par_pack_workers(), dt::par_pack_threshold(),
                dt::pack_plan_enabled() ? 1 : 0);

    Table table("Ablation: pack throughput (MB/s), generic vs compiled plan vs "
                "plan+parallel",
                "shape-size", {"generic", "plan", "plan+par", "plan/gen"});
    const std::vector<Count> sizes = {Count(64) << 10, Count(1) << 20, Count(4) << 20,
                                      Count(16) << 20};
    const std::size_t nsizes = bench_limit(1, sizes.size());
    for (std::size_t i = 0; i < nsizes; ++i) {
        const Count target = sizes[i];
        const int reps = smoke_mode() ? 2 : (target >= (Count(4) << 20) ? 20 : 80);
        for (Shape& s : std::vector<Shape>{make_struct_simple(target),
                                           make_nas_lu_y(target)}) {
            verify_identical(s.type, s.buf.data(), s.count);
            const Count total = s.type->size() * s.count;
            ByteVec dst(static_cast<std::size_t>(total));
            const double gen = pack_MBps(s.type, s.buf.data(), s.count, dst,
                                         dt::PackMode::generic, reps);
            const double plan = pack_MBps(s.type, s.buf.data(), s.count, dst,
                                          dt::PackMode::plan, reps);
            const double par = pack_MBps(s.type, s.buf.data(), s.count, dst,
                                         dt::PackMode::parallel, reps);
            table.add_row(std::string(s.name) + "-" + size_label(target),
                          {gen, plan, par, gen > 0 ? plan / gen : 0.0});
        }
    }
    table.finish("ablation_pack_plan");

    // --- Scatter-gather entry counts under coalescing --------------------
    Table iov("Ablation: MILC region-kernel SG entries, +/- coalescing",
              "granularity", {"entries-raw", "entries-coalesced", "bytes"});
    auto kernel = ddtbench::make_kernel("MILC_su3_zd");
    kernel->resize(smoke_mode() ? 64 * 1024 : 1024 * 1024);
    for (const bool fine : {false, true}) {
        kernel->set_fine_regions(fine);
        std::vector<IovEntry> entries(
            static_cast<std::size_t>(kernel->region_count()));
        kernel->regions(entries.data());
        const Count raw = static_cast<Count>(entries.size());
        const Count bytes_before = iov_total(entries);
        coalesce_iov(entries);
        if (iov_total(entries) != bytes_before) {
            std::fprintf(stderr, "ablation_pack_plan: coalescing changed bytes\n");
            return 1;
        }
        iov.add_row(fine ? "fine" : "coarse",
                    {static_cast<double>(raw), static_cast<double>(entries.size()),
                     static_cast<double>(bytes_before)});
    }
    iov.finish("ablation_pack_plan_iov");
    return 0;
}
