// Ablation A1 (paper §V-C, Listing 9): resumable packing of the NAS_LU_y
// strided pattern into fixed-size fragment buffers, three ways:
//   full-pack   pack everything into a staging buffer once, then memcpy
//               fragments out of it (what the paper fell back to after
//               hitting coroutine vectorization issues)
//   coroutine   a C++20 generator suspends inside the loop nest when the
//               fragment fills and resumes in place (Listing 9)
//   state-mach  a hand-rolled resumable cursor (explicit j/m indices)
// Host-only measurement: pack cost per buffer, no network.
#include <cstdio>
#include <cstring>
#include <vector>

#include "base/bytes.hpp"
#include "base/stats.hpp"
#include "base/time.hpp"
#include "common.hpp"
#include "coro/generator.hpp"

namespace {

using namespace mpicd;

// NAS_LU_y shape: ny blocks of 5 doubles, row stride nx*5 doubles.
struct Grid {
    Count nx = 64, ny = 0;
    std::vector<double> data;
    explicit Grid(Count target_bytes) {
        ny = std::max<Count>(1, target_bytes / 40);
        data.assign(static_cast<std::size_t>(nx * ny * 5), 1.5);
    }
    [[nodiscard]] Count payload() const { return ny * 5 * 8; }
};

// --- full pack then fragment copies.
double run_full_pack(const Grid& g, Count frag_bytes, int reps) {
    std::vector<double> staged(static_cast<std::size_t>(g.ny * 5));
    ByteVec frag(static_cast<std::size_t>(frag_bytes));
    RunningStats stats;
    for (int r = 0; r < reps; ++r) {
        HostTimer t;
        std::size_t pos = 0;
        for (Count j = 0; j < g.ny; ++j) {
            std::memcpy(&staged[pos], &g.data[static_cast<std::size_t>(j * g.nx * 5)],
                        40);
            pos += 5;
        }
        const auto* src = reinterpret_cast<const std::byte*>(staged.data());
        for (Count off = 0; off < g.payload(); off += frag_bytes) {
            const Count n = std::min(frag_bytes, g.payload() - off);
            std::memcpy(frag.data(), src + off, static_cast<std::size_t>(n));
        }
        stats.add(t.elapsed_us());
    }
    return stats.mean();
}

// --- coroutine (Listing 9 style).
struct CoroJob {
    const Grid* g;
    double* dst;
    Count dst_cnt; // doubles per fragment
};

coro::generator<Count> pack_coro(CoroJob* job) {
    Count pos = 0;
    const Grid& g = *job->g;
    for (Count j = 0; j < g.ny; ++j) {
        for (Count m = 0; m < 5;) {
            const Count cnt = std::min(job->dst_cnt - pos, 5 - m);
            const auto base = static_cast<std::size_t>(j * g.nx * 5);
            for (Count e = 0; e < cnt; ++e, ++m)
                job->dst[pos++] = g.data[base + static_cast<std::size_t>(m)];
            if (pos == job->dst_cnt) {
                co_yield pos * 8;
                pos = 0;
            }
        }
    }
    co_return pos * 8;
}

double run_coroutine(const Grid& g, Count frag_bytes, int reps) {
    std::vector<double> frag(static_cast<std::size_t>(frag_bytes / 8));
    RunningStats stats;
    for (int r = 0; r < reps; ++r) {
        HostTimer t;
        CoroJob job{&g, frag.data(), frag_bytes / 8};
        auto gen = pack_coro(&job);
        while (gen.next().has_value()) {
        }
        stats.add(t.elapsed_us());
    }
    return stats.mean();
}

// --- explicit state machine.
struct Cursor {
    Count j = 0, m = 0;
};

Count pack_resume(const Grid& g, Cursor& cur, double* dst, Count dst_cnt) {
    Count pos = 0;
    while (cur.j < g.ny && pos < dst_cnt) {
        const auto base = static_cast<std::size_t>(cur.j * g.nx * 5);
        const Count cnt = std::min(dst_cnt - pos, 5 - cur.m);
        for (Count e = 0; e < cnt; ++e, ++cur.m)
            dst[pos++] = g.data[base + static_cast<std::size_t>(cur.m)];
        if (cur.m == 5) {
            cur.m = 0;
            ++cur.j;
        }
    }
    return pos * 8;
}

double run_state_machine(const Grid& g, Count frag_bytes, int reps) {
    std::vector<double> frag(static_cast<std::size_t>(frag_bytes / 8));
    RunningStats stats;
    for (int r = 0; r < reps; ++r) {
        HostTimer t;
        Cursor cur;
        while (pack_resume(g, cur, frag.data(), frag_bytes / 8) > 0) {
        }
        stats.add(t.elapsed_us());
    }
    return stats.mean();
}

} // namespace

int main() {
    using mpicd::bench::Table;
    Table table("Ablation A1: resumable NAS_LU_y packing (us per pack, "
                "fragment = 64 KiB)",
                "payload", {"full-pack", "coroutine", "state-mach"});
    const std::vector<Count> targets = {Count(64) << 10, Count(256) << 10,
                                        Count(1) << 20, Count(4) << 20};
    const std::size_t npoints = mpicd::bench::bench_limit(1, targets.size());
    for (std::size_t i = 0; i < npoints; ++i) {
        const Count target = targets[i];
        const Grid g(target);
        const int reps = mpicd::bench::smoke_mode() ? 3
                         : target > (1 << 20)       ? 20
                                                    : 60;
        table.add_row(mpicd::bench::size_label(g.payload()),
                      {run_full_pack(g, 64 << 10, reps),
                       run_coroutine(g, 64 << 10, reps),
                       run_state_machine(g, 64 << 10, reps)});
    }
    table.finish("ablation_coro_pack");
    std::printf("(full-pack copies twice; the resumable variants pack straight "
                "into fragments)\n");
    return 0;
}
