// Trait-dispatch ablation: the same application payload (a vector of
// struct_simple, Listing 7) moved three ways (see docs/PERF.md §9):
//
//   trait    mpicd::send/recv (p2p/api.hpp): compile-time wire
//            classification routes the vector to the two-entry
//            size+payload IOV fast path — no pack plan, no descriptor
//            cache, no pack/unpack callbacks;
//   derived  the classic MPI derived datatype (struct_simple_dt), which
//            the engine lowers through a compiled pack plan and the
//            Convertor;
//   custom   the paper's custom-datatype callbacks
//            (custom_datatype_of<StructSimple>).
//
// Latency is one-way virtual time; bandwidth is application bytes
// (count * sizeof(StructSimple)) over that time, so the derived/custom
// columns get credit for shipping 20 of every 24 bytes.
//
// Hard assertions (exit 1), per the PR acceptance criteria:
//   - the trait path compiles ZERO pack plans and performs ZERO
//     descriptor-cache lookups (the derived path, run over the same
//     traffic, compiles at least one);
//   - lossless copy amplification of the trait path is strictly below the
//     derived-datatype path (RDMA rendezvous moves payload by DMA instead
//     of pack/unpack bounce copies);
//   - MPICD_FAST_PATH=0 is wire-identical: same delivered payload hash
//     and same fragment schedule as the enabled fast path.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "base/pool.hpp"
#include "common.hpp"
#include "core/paper_types.hpp"
#include "p2p/api.hpp"

namespace mpicd {
namespace {

using core::StructSimple;

// Pinned thresholds: the trait path's CONTIG/IOV descriptors and the
// fallback's custom lowering must face the same eager/rendezvous
// crossover, or the modes would be measuring different protocols.
netsim::WireParams bench_params() {
    netsim::WireParams p;
    p.eager_threshold = 4096;
    p.iov_eager_threshold = 4096;
    p.rndv_frag_size = 64 * 1024;
    return p;
}

// Deterministic elements with deterministic *padding*: the trait path
// ships raw object bytes (gap included), so the gap must not hold
// indeterminate garbage or the on/off wire-identity hash would be
// comparing noise. Zero the storage, then assign fields individually (a
// whole-struct assignment would copy a temporary's indeterminate padding).
std::vector<StructSimple> make_elems(Count n) {
    std::vector<StructSimple> v(static_cast<std::size_t>(n));
    std::memset(v.data(), 0, v.size() * sizeof(StructSimple));
    for (Count i = 0; i < n; ++i) {
        auto& s = v[static_cast<std::size_t>(i)];
        const auto k = static_cast<std::int32_t>(i);
        s.a = k;
        s.b = k * 3 - 1;
        s.c = ~k;
        s.d = static_cast<double>(i) * 0.25;
    }
    return v;
}

bench::Method trait_method(Count n) {
    auto a = std::make_shared<std::vector<StructSimple>>(make_elems(n));
    auto ar = std::make_shared<std::vector<StructSimple>>();
    auto b = std::make_shared<std::vector<StructSimple>>();
    return {
        "trait",
        [a, ar](p2p::Communicator& c, int) {
            (void)mpicd::send(c, *a, 1, 1);
            (void)mpicd::recv(c, *ar, 1, 2);
        },
        [b](p2p::Communicator& c, int) {
            (void)mpicd::recv(c, *b, 0, 1);
            (void)mpicd::send(c, *b, 0, 2);
        },
    };
}

bench::Method derived_method(Count n, dt::TypeRef type) {
    auto a = std::make_shared<std::vector<StructSimple>>(make_elems(n));
    auto b = std::make_shared<std::vector<StructSimple>>(
        static_cast<std::size_t>(n));
    return {
        "derived",
        [a, type, n](p2p::Communicator& c, int) {
            (void)c.isend(a->data(), n, type, 1, 1).wait();
            (void)c.irecv(a->data(), n, type, 1, 2).wait();
        },
        [b, type, n](p2p::Communicator& c, int) {
            (void)c.irecv(b->data(), n, type, 0, 1).wait();
            (void)c.isend(b->data(), n, type, 0, 2).wait();
        },
    };
}

bench::Method custom_method(Count n) {
    const auto& type = core::custom_datatype_of<StructSimple>();
    auto a = std::make_shared<std::vector<StructSimple>>(make_elems(n));
    auto b = std::make_shared<std::vector<StructSimple>>(
        static_cast<std::size_t>(n));
    return {
        "custom",
        [a, &type, n](p2p::Communicator& c, int) {
            (void)c.isend_custom(a->data(), n, type, 1, 1).wait();
            (void)c.irecv_custom(a->data(), n, type, 1, 2).wait();
        },
        [b, &type, n](p2p::Communicator& c, int) {
            (void)c.irecv_custom(b->data(), n, type, 0, 1).wait();
            (void)c.isend_custom(b->data(), n, type, 0, 2).wait();
        },
    };
}

void fail(const char* what) {
    std::fprintf(stderr, "ablation_trait_dispatch: ASSERTION FAILED: %s\n", what);
    std::exit(1);
}

std::uint64_t counter_value(const char* group, const char* name) {
    for (const auto& s : metrics().snapshot())
        if (s.group == group && s.name == name) return s.value;
    return 0;
}

std::uint64_t fnv1a(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < n; ++i) h = (h ^ b[i]) * 1099511628211ull;
    return h;
}

struct GateRun {
    std::uint64_t payload_hash = 0;
    std::uint64_t frag_count = 0;
    std::uint64_t frag_sum = 0;
    double copy_amp = 0.0;
};

// One one-directional rendezvous-sized trait transfer with the knob forced
// to `fast`; fragment schedule and delivered-payload hash identify the
// wire behavior.
GateRun gate_exchange(bool fast, Count n) {
    metrics().reset();
    core::set_fast_path(fast);
    GateRun out;
    {
        p2p::Universe uni(2, bench_params());
        const auto src = make_elems(n);
        std::vector<StructSimple> dst;
        p2p::MsgStatus rst, sst;
        std::thread rx([&] { rst = mpicd::recv(uni.comm(1), dst, 0, 5); });
        sst = mpicd::send(uni.comm(0), src, 1, 5);
        rx.join();
        if (!ok(sst.status) || !ok(rst.status))
            fail("gate exchange did not complete");
        if (dst.size() != src.size()) fail("gate exchange delivered wrong shape");
        for (std::size_t i = 0; i < dst.size(); ++i) {
            if (dst[i].a != src[i].a || dst[i].b != src[i].b ||
                dst[i].c != src[i].c || dst[i].d != src[i].d)
                fail("gate exchange delivered wrong payload");
        }
        out.payload_hash = fnv1a(dst.data(), dst.size() * sizeof(StructSimple));
    }
    for (const auto& h : metrics().hist_snapshot()) {
        if (h.group == "wire" && h.name == "frag_bytes") {
            out.frag_count = h.snap.count;
            out.frag_sum = h.snap.sum;
        }
    }
    const auto copied = datapath::bytes_copied().load(std::memory_order_relaxed);
    const auto delivered =
        datapath::bytes_delivered().load(std::memory_order_relaxed);
    out.copy_amp = delivered != 0 ? static_cast<double>(copied) /
                                        static_cast<double>(delivered)
                                  : 0.0;
    core::set_fast_path(core::fast_path_from_env());
    return out;
}

int run() {
    const auto params = bench_params();
    const auto ddt = core::struct_simple_dt();
    const Count counts[] = {128, 4096, 32768};
    const std::size_t ncounts = bench::bench_limit(1, 3);

    bench::Table table(
        "Trait dispatch ablation: concepts API vs derived datatype vs custom "
        "callbacks (vector<struct_simple>, thresholds pinned at 4 KiB)",
        "size",
        {"trait_lat_us", "trait_MBps", "derived_lat_us", "derived_MBps",
         "custom_lat_us", "custom_MBps"});

    core::set_fast_path(true);
    for (std::size_t ci = 0; ci < ncounts; ++ci) {
        const Count n = counts[ci];
        const Count app_bytes = n * static_cast<Count>(sizeof(StructSimple));
        const int iters = bench::iters_for(app_bytes);
        std::vector<double> row;
        for (const auto& m :
             {trait_method(n), derived_method(n, ddt), custom_method(n)}) {
            const double lat = bench::measure(m, iters, params).mean();
            row.push_back(lat);
            row.push_back(bench::bandwidth_MBps(app_bytes, lat));
        }
        table.add_row(bench::size_label(app_bytes), row);
    }

    // --- Acceptance gates (rendezvous-sized: 4096 elems ~ 96 KiB raw) ----
    const Count gate_n = 4096;

    // 1. The trait path bypasses the entire lowering pipeline: zero pack
    //    plans compiled, zero descriptor-cache lookups.
    const GateRun trait_on = gate_exchange(true, gate_n);
    if (counter_value("pack", "plans_compiled") != 0)
        fail("trait path compiled a pack plan");
    if (counter_value("pack", "plan_cache_hits") != 0 ||
        counter_value("pack", "plan_cache_misses") != 0)
        fail("trait path touched the plan cache");
    if (counter_value("fastpath", "hits_resizable") == 0)
        fail("trait path did not take the fast path");

    // 2. Lossless copy amplification: strictly below the derived path.
    metrics().reset();
    {
        p2p::Universe uni(2, params);
        const auto src = make_elems(gate_n);
        std::vector<StructSimple> dst(static_cast<std::size_t>(gate_n));
        auto rr = uni.comm(1).irecv(dst.data(), gate_n, ddt, 0, 6);
        auto rs = uni.comm(0).isend(src.data(), gate_n, ddt, 1, 6);
        if (!ok(rs.wait().status) || !ok(rr.wait().status))
            fail("derived gate exchange did not complete");
    }
    // The table phase may already have compiled and cached this (layout,
    // count) plan; what matters is that the derived path goes through the
    // lowering pipeline at all — compile or cache lookup — where the trait
    // path above showed exactly zero.
    if (counter_value("pack", "plans_compiled") +
            counter_value("pack", "plan_cache_hits") +
            counter_value("pack", "plan_cache_misses") ==
        0)
        fail("derived path did no plan work (gate is vacuous)");
    {
        const auto copied =
            datapath::bytes_copied().load(std::memory_order_relaxed);
        const auto delivered =
            datapath::bytes_delivered().load(std::memory_order_relaxed);
        const double derived_amp =
            delivered != 0 ? static_cast<double>(copied) /
                                 static_cast<double>(delivered)
                           : 0.0;
        if (trait_on.copy_amp >= derived_amp)
            fail("trait copy_amp is not strictly below the derived path");
        std::printf("ablation_trait_dispatch: copy_amp trait=%.3f derived=%.3f\n",
                    trait_on.copy_amp, derived_amp);
    }

    // 3. MPICD_FAST_PATH=0 reproduces the wire byte-identically.
    const GateRun trait_off = gate_exchange(false, gate_n);
    if (counter_value("fastpath", "fallback_ops") == 0)
        fail("knob-off run did not take the fallback");
    if (trait_off.payload_hash != trait_on.payload_hash)
        fail("fast path on/off delivered different payload bytes");
    if (trait_off.frag_count != trait_on.frag_count ||
        trait_off.frag_sum != trait_on.frag_sum)
        fail("fast path on/off produced different fragment schedules");

    table.finish("ablation_trait_dispatch");
    std::printf("ablation_trait_dispatch: all dispatch assertions passed\n");
    return 0;
}

} // namespace
} // namespace mpicd

int main() { return mpicd::run(); }
