// Ablation A2: two lowerings of a pack-only custom datatype onto the
// transport (DESIGN.md):
//   iov        materialize the packed stream up front, ship it as the
//              first iovec entry (the paper prototype's strategy)
//   pipeline   let the transport drive the pack callback fragment by
//              fragment through its generic-datatype rendezvous pipeline
// The pipeline avoids the up-front full-size staging buffer (lower memory)
// but pays per-fragment protocol costs — the trade-off an MPI
// implementation would tune per message.
#include "common.hpp"
#include "core/paper_types.hpp"
#include "core/traits.hpp"

namespace {

using namespace mpicd;
using namespace mpicd::bench;
using core::StructSimple;

Method lowering_method(Count count, core::CustomLowering lowering, const char* name) {
    auto a = std::make_shared<std::vector<StructSimple>>(static_cast<std::size_t>(count));
    auto b = std::make_shared<std::vector<StructSimple>>(static_cast<std::size_t>(count));
    const auto* type = &core::custom_datatype_of<StructSimple>();
    return {
        name,
        [a, type, count, lowering](p2p::Communicator& c, int) {
            (void)c.isend_custom(a->data(), count, *type, 1, 1, lowering).wait();
            (void)c.irecv_custom(a->data(), count, *type, 1, 2, lowering).wait();
        },
        [b, type, count, lowering](p2p::Communicator& c, int) {
            (void)c.irecv_custom(b->data(), count, *type, 0, 1, lowering).wait();
            (void)c.isend_custom(b->data(), count, *type, 0, 2, lowering).wait();
        },
    };
}

} // namespace

int main() {
    const auto params = netsim::WireParams::from_env();
    Table table("Ablation A2: custom-type lowering, struct-simple (MB/s)", "size",
                {"iov", "generic-pipeline"});
    for (Count size = 1024; size <= (smoke_mode() ? Count(4096) : Count(1) << 22); size *= 4) {
        const Count count = size / core::kScalarPack;
        const Count actual = count * core::kScalarPack;
        const int iters = iters_for(actual);
        std::vector<double> row;
        row.push_back(bandwidth_MBps(
            actual,
            measure(lowering_method(count, core::CustomLowering::iov, "iov"), iters,
                    params)
                .mean()));
        row.push_back(bandwidth_MBps(
            actual,
            measure(lowering_method(count, core::CustomLowering::generic_pipeline,
                                    "pipeline"),
                    iters, params)
                .mean()));
        table.add_row(size_label(actual), row);
    }
    table.finish("ablation_lowering");
    return 0;
}
