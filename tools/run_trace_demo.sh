#!/bin/sh
# Run the trace demo with tracing enabled and validate the artifact:
#
#   run_trace_demo.sh <trace_demo-binary> [out-dir]
#
# The demo pushes lossy derived-datatype and custom-serialized traffic
# through the stack; this script checks that the resulting Chrome
# trace-event file is well-formed JSON and contains the pack-fragment,
# SG-lowering, rendezvous, and retransmit events the instrumentation
# promises (see docs/OBSERVABILITY.md). Wired into ctest under the
# `trace` label: run with `ctest -L trace`.
set -eu

if [ $# -lt 1 ]; then
    echo "usage: $0 <trace_demo-binary> [out-dir]" >&2
    exit 2
fi

demo=$1
dir=${2:-$(dirname "$demo")/trace_demo_out}
mkdir -p "$dir"
out="$dir/trace_demo.json"
rm -f "$out"

MPICD_TRACE=1 MPICD_TRACE_FILE="$out" "$demo"

if [ ! -s "$out" ]; then
    echo "run_trace_demo: $demo did not write $out" >&2
    exit 1
fi

# Well-formed Chrome trace-event JSON (loadable by Perfetto / about:tracing).
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$out" > /dev/null || {
        echo "run_trace_demo: $out is not valid JSON" >&2
        exit 1
    }
else
    echo "run_trace_demo: python3 not found, skipping JSON validation" >&2
fi

# The run must have captured each instrumented layer: custom-type pack
# fragments and SG lowering (engine), the rendezvous handshake and pipeline
# fragments (ucx), the recovery from the scheduled drop, and the fault
# injector's view of it (net).
for ev in custom_pack_frag sg_lower_send rndv_rts frag_send retransmit fault_drop; do
    if ! grep -q "\"$ev\"" "$out"; then
        echo "run_trace_demo: no \"$ev\" event in $out" >&2
        exit 1
    fi
done

echo "run_trace_demo: OK $out"
