#!/bin/sh
# End-to-end validation of the collective-op analysis pipeline:
#
#   run_coll_analyze.sh <coll_trace_demo-binary> [out-dir]
#
# Runs the 12-rank two-level collective demo (ibarrier + hierarchical
# ibcast + iallreduce + ragged allgatherv) with tracing on, then feeds
# the Chrome trace to tools/coll_analyze.py --check, which requires
# every op's round tree to be complete on every rank and the cross-rank
# critical path to tile the op's end-to-end virtual-time latency
# exactly. Wired into ctest under the `analyze` label.
set -eu

if [ $# -lt 1 ]; then
    echo "usage: $0 <coll_trace_demo-binary> [out-dir]" >&2
    exit 2
fi

demo=$1
dir=${2:-$(dirname "$demo")/coll_analyze_out}
tools_dir=$(dirname "$0")
mkdir -p "$dir"
out="$dir/coll_trace.json"
rm -f "$out"

if ! command -v python3 >/dev/null 2>&1; then
    echo "run_coll_analyze: python3 not found, skipping" >&2
    exit 77 # ctest SKIP_RETURN_CODE
fi

MPICD_TRACE=1 MPICD_TRACE_FILE="$out" "$demo" > "$dir/coll_trace_demo.log" 2>&1

if [ ! -s "$out" ]; then
    echo "run_coll_analyze: $demo did not write $out" >&2
    exit 1
fi

python3 "$tools_dir/coll_analyze.py" --check "$out"

# The machine-readable report must also parse and carry the aggregate:
# all four collective families of the demo present, each with a critical
# path no longer than its op's end-to-end latency, and at least one
# hierarchical op that crossed the node uplinks.
python3 "$tools_dir/coll_analyze.py" --json "$out" > "$dir/report.json"
python3 - "$dir/report.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
agg = doc["aggregate"]
assert agg["ops"] >= 4, "expected >= 4 collective ops, got %d" % agg["ops"]
assert agg["ops_with_critical_path"] == agg["ops"], "incomplete op trees"
fams = {op["fam"] for op in doc["ops"]}
assert {"barrier", "bcast", "allreduce", "allgatherv"} <= fams, fams
assert any(op["algo"] == "hier" for op in doc["ops"]), "no hier op traced"
for op in doc["ops"]:
    assert op["cp_us"] <= op["e2e_us"] + 0.01, op
    assert op["rounds"] >= 1 and op["messages"] >= 1, op
EOF

echo "run_coll_analyze: OK $out"
