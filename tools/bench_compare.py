#!/usr/bin/env python3
"""Perf-regression gate: compare BENCH_<name>.json files against the
committed baselines in bench/baselines/.

The bench tables mix two time sources: link serialization and latency are
deterministic virtual time, but host pack/unpack work is *measured* wall
time charged into the virtual clock, so individual cells of a smoke run
are noisy (2x swings on a loaded CI box are normal). The gate therefore
compares the per-column *geometric mean* of the new/baseline ratio —
systematic regressions move every cell of a column, noise does not —
and fails only when a column drifts by more than the threshold in either
direction (a large "improvement" in virtual time is a modeling change
that deserves the same scrutiny as a slowdown).

Cells where either side is ~0 are skipped (some tables carry a column
that is legitimately zero at smoke sizes). Structural drift — renamed
columns, missing rows, a smoke/full mismatch — always fails.

Usage:
    bench_compare.py --baseline-dir bench/baselines build/bench_smoke_json/BENCH_*.json
    bench_compare.py --update --baseline-dir bench/baselines ...   # reseed

Wired into ctest as `bench_compare` (label bench-smoke): it runs after
the bench_smoke_* tests via a ctest fixture and consumes their output.
Baselines that do not exist are reported and skipped (exit 0) unless
--require-baseline is given, so adding a new bench does not break the
gate before its baseline is committed.
"""

import argparse
import glob
import json
import math
import os
import shutil
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def column_ratios(new, base):
    """Geometric-mean new/base ratio per column; None when no valid cell."""
    cols = new["columns"]
    base_rows = {r["x"]: r["values"] for r in base["rows"]}
    sums = [0.0] * len(cols)
    counts = [0] * len(cols)
    for row in new["rows"]:
        bvals = base_rows.get(row["x"])
        if bvals is None:
            continue
        for i, (nv, bv) in enumerate(zip(row["values"], bvals)):
            if nv <= 1e-12 or bv <= 1e-12:
                continue
            sums[i] += math.log(nv / bv)
            counts[i] += 1
    return [
        (math.exp(s / c) if c else None) for s, c in zip(sums, counts)
    ]


def compare_one(new_path, base_path, threshold):
    """Return a list of failure strings (empty = pass)."""
    new = load(new_path)
    base = load(base_path)
    errors = []
    rows = new.get("rows") or []
    if not rows or "x" not in rows[0]:
        # Non-perf table (e.g. table1_characteristics): the content is
        # static, so any drift is a real change — compare exactly.
        if rows != base.get("rows"):
            errors.append("static table content changed vs baseline")
        else:
            print("  static table unchanged  [ok]")
        return errors
    if new.get("columns") != base.get("columns"):
        errors.append("columns changed: %s -> %s"
                      % (base.get("columns"), new.get("columns")))
        return errors
    if bool(new.get("smoke")) != bool(base.get("smoke")):
        errors.append("smoke flag mismatch (baseline %s, new %s): compare "
                      "like with like" % (base.get("smoke"), new.get("smoke")))
        return errors
    new_x = [r["x"] for r in new["rows"]]
    base_x = [r["x"] for r in base["rows"]]
    missing = [x for x in base_x if x not in new_x]
    if missing:
        errors.append("rows missing vs baseline: %s" % missing)
    log_thresh = math.log(threshold)
    for col, ratio in zip(new["columns"], column_ratios(new, base)):
        if ratio is None:
            continue
        drift = abs(math.log(ratio))
        marker = "FAIL" if drift > log_thresh else "ok"
        print("  %-24s geomean ratio %6.3f  [%s]" % (col, ratio, marker))
        if drift > log_thresh:
            errors.append("column %r drifted %.3fx vs baseline "
                          "(threshold %.2fx)" % (col, ratio, threshold))
    return errors


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("jsons", nargs="+",
                    help="BENCH_<name>.json files (globs allowed)")
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="max allowed per-column geomean drift factor "
                         "(default 2.0)")
    ap.add_argument("--update", action="store_true",
                    help="copy the given files into the baseline dir "
                         "instead of comparing")
    ap.add_argument("--require-baseline", action="store_true",
                    help="fail when a bench has no committed baseline")
    args = ap.parse_args(argv)

    paths = []
    for pattern in args.jsons:
        hits = glob.glob(pattern)
        paths.extend(hits if hits else [pattern])

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for p in paths:
            dst = os.path.join(args.baseline_dir, os.path.basename(p))
            shutil.copyfile(p, dst)
            print("bench_compare: baseline updated: %s" % dst)
        return 0

    failed = []
    skipped = 0
    for p in sorted(paths):
        base_path = os.path.join(args.baseline_dir, os.path.basename(p))
        name = os.path.basename(p)
        if not os.path.exists(base_path):
            print("%s: no baseline, skipped" % name)
            skipped += 1
            if args.require_baseline:
                failed.append("%s: missing baseline %s" % (name, base_path))
            continue
        print("%s:" % name)
        errors = compare_one(p, base_path, args.threshold)
        for e in errors:
            failed.append("%s: %s" % (name, e))

    if failed:
        print("\nbench_compare: FAILED")
        for f in failed:
            print("  " + f)
        return 1
    print("\nbench_compare: OK (%d compared, %d without baseline)"
          % (len(paths) - skipped, skipped))
    return 0


if __name__ == "__main__":
    sys.exit(main())
