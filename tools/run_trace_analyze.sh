#!/bin/sh
# End-to-end validation of the span-analysis pipeline:
#
#   run_trace_analyze.sh <trace_demo-binary> [out-dir]
#
# Runs the trace demo (lossy multi-fragment rendezvous + eager + custom
# serialization) with tracing on, then feeds the Chrome trace file to
# tools/trace_analyze.py --check, which requires at least one complete
# per-message span whose prep/wire/deliver phases sum exactly to its
# end-to-end latency and whose critical path is monotone.
# Wired into ctest under the `analyze` label: run with `ctest -L analyze`.
set -eu

if [ $# -lt 1 ]; then
    echo "usage: $0 <trace_demo-binary> [out-dir]" >&2
    exit 2
fi

demo=$1
dir=${2:-$(dirname "$demo")/trace_analyze_out}
tools_dir=$(dirname "$0")
mkdir -p "$dir"
out="$dir/trace_analyze.json"
rm -f "$out"

if ! command -v python3 >/dev/null 2>&1; then
    echo "run_trace_analyze: python3 not found, skipping" >&2
    exit 77 # ctest SKIP_RETURN_CODE
fi

MPICD_TRACE=1 MPICD_TRACE_FILE="$out" "$demo" > "$dir/trace_demo.log" 2>&1

if [ ! -s "$out" ]; then
    echo "run_trace_analyze: $demo did not write $out" >&2
    exit 1
fi

python3 "$tools_dir/trace_analyze.py" --check "$out"

# The machine-readable report must also parse and carry the aggregate.
python3 "$tools_dir/trace_analyze.py" --json "$out" > "$dir/report.json"
python3 - "$dir/report.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
agg = doc["aggregate"]
assert agg["complete_spans"] >= 1, "no complete spans in --json report"
assert agg["latency_us"]["p99"] > 0, "degenerate latency percentiles"
EOF

echo "run_trace_analyze: OK $out"
