#!/bin/sh
# Smoke-run one benchmark binary: tiny sweep (MPICD_BENCH_SMOKE=1), then
# check it exited cleanly and produced its BENCH_<name>.json artifact.
#
#   run_bench_smoke.sh <bench-binary> [json-dir]
#
# json-dir defaults to a directory next to the binary; ctest points it at
# the build tree so repeated runs overwrite rather than accumulate.
set -eu

if [ $# -lt 1 ]; then
    echo "usage: $0 <bench-binary> [json-dir]" >&2
    exit 2
fi

bench=$1
name=$(basename "$bench")
dir=${2:-$(dirname "$bench")/bench_smoke_json}
mkdir -p "$dir"

MPICD_BENCH_SMOKE=1 MPICD_BENCH_JSON_DIR="$dir" "$bench"

# Every bench must leave at least its own BENCH_<name>.json behind
# (some write extra tables, e.g. ablation_pack_plan_iov).
json="$dir/BENCH_$name.json"
if [ ! -s "$json" ]; then
    echo "run_bench_smoke: $bench did not write $json" >&2
    exit 1
fi
echo "run_bench_smoke: OK $json"
