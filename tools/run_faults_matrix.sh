#!/usr/bin/env bash
# Fault-matrix sweep: runs the test suite against the simulated fabric with
# fault injection off (full suite, baseline) and then with random faults
# enabled through the MPICD_FAULT_* environment across several seeds.
#
# With faults on, tests that assert the exact wire-model timing are excluded
# (injected delay/drop legitimately changes arrival times):
#   - test_netsim  : asserts modeled latencies to the microsecond
#   - test_engine  : compares timing between engine variants
#   - bench_compare: gates bench throughput/latency against baselines
#     recorded on a lossless fabric; retransmits and injected delay shift
#     those numbers legitimately. The benches themselves still run in the
#     lossy legs (their built-in correctness asserts — matched pairings,
#     wire-identical ablation — must hold under faults); only the
#     performance gate is restricted to the faults-off leg.
# Everything else must pass unmodified — that is the point of the sweep: the
# reliable-delivery protocol makes packet loss invisible to correctness.
#
# A final AddressSanitizer leg rebuilds the datapath-relevant tests in a
# separate build tree (-DMPICD_SANITIZE=address) and replays the lossy
# configuration through them: the pooled hot path recycles and shares
# buffers across threads, and ASan turns any use-after-release or
# double-release of a slab into a hard failure. MPICD_SKIP_ASAN=1 skips it.
#
# A ThreadSanitizer leg (-DMPICD_SANITIZE=thread) then replays the
# matcher-heavy tests — test_matcher's randomized differential sweeps, the
# test_ucx conformance set, the multi-threaded many-rank soak, and the
# collectives (whose dissemination-barrier rounds historically aliased one
# token byte between concurrent send and recv — the TSan regression for
# that bug lives in test_collectives) — so the finely-locked progress path
# (busy-flag serialization, sharded admission, completion registry,
# collective progress hooks) is checked for data races, not just
# correctness. MPICD_SKIP_TSAN=1 skips it.
#
# A final tracing leg replays the lossy fault/collective tests with
# MPICD_TRACE=1 over one seed: span instrumentation (MsgScope stamping,
# coll.* op/round instants, flight-recorder sources) must stay a pure
# observer — the reliability protocol and every collective must behave
# identically with the rings recording. MPICD_SKIP_TRACE=1 skips it.
#
# Usage: tools/run_faults_matrix.sh [build-dir] (default: build)
set -euo pipefail

BUILD_DIR=${1:-build}
if [[ ! -f "$BUILD_DIR/CTestTestfile.cmake" ]]; then
    echo "error: '$BUILD_DIR' is not a configured build directory" >&2
    exit 1
fi

SEEDS=(1 42 999983)
EXCLUDE='test_netsim|test_engine|bench_compare'
JOBS=${CTEST_PARALLEL_LEVEL:-4}

# --repeat until-pass:2 absorbs the pre-existing scheduler-dependent flake in
# test_engine's rail-striping race (flaky on the lossless seed as well).
run_ctest() {
    ctest --test-dir "$BUILD_DIR" -j "$JOBS" --output-on-failure \
          --repeat until-pass:2 "$@"
}

echo "=== faults off: full suite ==="
run_ctest

for seed in "${SEEDS[@]}"; do
    echo "=== faults on: seed=$seed (excluding: $EXCLUDE) ==="
    MPICD_FAULT_SEED=$seed \
    MPICD_FAULT_DROP=0.01 \
    MPICD_FAULT_DUP=0.01 \
    MPICD_FAULT_REORDER=0.01 \
    MPICD_FAULT_CORRUPT=0.01 \
    MPICD_FAULT_DELAY=0.05 \
    MPICD_FAULT_DELAY_US=10 \
    run_ctest -E "$EXCLUDE"
done

if [[ "${MPICD_SKIP_ASAN:-0}" != "1" ]]; then
    ASAN_DIR=${BUILD_DIR}-asan
    ASAN_TESTS='test_base|test_ucx|test_faults|test_reliability_soak'
    echo "=== asan leg: configuring $ASAN_DIR ==="
    cmake -B "$ASAN_DIR" -S . \
          -DMPICD_SANITIZE=address \
          -DMPICD_BUILD_BENCH=OFF \
          -DMPICD_BUILD_EXAMPLES=OFF >/dev/null
    cmake --build "$ASAN_DIR" -j "$JOBS" --target \
          test_base test_ucx test_faults test_reliability_soak
    echo "=== asan leg: lossy datapath tests under AddressSanitizer ==="
    MPICD_FAULT_SEED=42 \
    MPICD_FAULT_DROP=0.01 \
    MPICD_FAULT_DUP=0.01 \
    MPICD_FAULT_REORDER=0.01 \
    MPICD_FAULT_CORRUPT=0.01 \
    ctest --test-dir "$ASAN_DIR" -j "$JOBS" --output-on-failure \
          --repeat until-pass:2 -R "$ASAN_TESTS"
else
    echo "=== asan leg: skipped (MPICD_SKIP_ASAN=1) ==="
fi

if [[ "${MPICD_SKIP_TSAN:-0}" != "1" ]]; then
    TSAN_DIR=${BUILD_DIR}-tsan
    TSAN_TESTS='test_ucx|test_matcher|test_reliability_soak|test_collectives|test_coll_faults'
    echo "=== tsan leg: configuring $TSAN_DIR ==="
    cmake -B "$TSAN_DIR" -S . \
          -DMPICD_SANITIZE=thread \
          -DMPICD_BUILD_BENCH=OFF \
          -DMPICD_BUILD_EXAMPLES=OFF >/dev/null
    cmake --build "$TSAN_DIR" -j "$JOBS" --target \
          test_ucx test_matcher test_reliability_soak \
          test_collectives test_coll_faults
    echo "=== tsan leg: matcher + threaded soak under ThreadSanitizer ==="
    MPICD_FAULT_SEED=42 \
    MPICD_FAULT_DROP=0.01 \
    MPICD_FAULT_DUP=0.01 \
    MPICD_FAULT_REORDER=0.01 \
    MPICD_FAULT_CORRUPT=0.01 \
    ctest --test-dir "$TSAN_DIR" -j "$JOBS" --output-on-failure \
          --repeat until-pass:2 -R "$TSAN_TESTS"
else
    echo "=== tsan leg: skipped (MPICD_SKIP_TSAN=1) ==="
fi

if [[ "${MPICD_SKIP_TRACE:-0}" != "1" ]]; then
    TRACE_TESTS='test_trace|test_faults|test_coll_faults|test_collectives'
    echo "=== trace leg: lossy seed 42 with MPICD_TRACE=1 ==="
    MPICD_TRACE=1 \
    MPICD_FAULT_SEED=42 \
    MPICD_FAULT_DROP=0.01 \
    MPICD_FAULT_DUP=0.01 \
    MPICD_FAULT_REORDER=0.01 \
    MPICD_FAULT_CORRUPT=0.01 \
    MPICD_FAULT_DELAY=0.05 \
    MPICD_FAULT_DELAY_US=10 \
    run_ctest -R "$TRACE_TESTS"
else
    echo "=== trace leg: skipped (MPICD_SKIP_TRACE=1) ==="
fi

echo "=== fault matrix: all passes green ==="
