#!/usr/bin/env python3
"""Render the benchmark tables in bench_output.txt as ASCII log-log charts.

The figure benches print plain tables (size column + one column per
method). This tool turns each into a quick terminal chart so the paper
shapes (crossovers, dips, who-wins) are visible without matplotlib:

    ./tools/plot_bench.py bench_output.txt            # all figures
    ./tools/plot_bench.py bench_output.txt Fig.7      # one figure
"""
import math
import re
import sys

WIDTH = 72
HEIGHT = 18
MARKS = "ox+*#@%&"


def parse_size(label: str) -> float:
    m = re.fullmatch(r"(\d+(?:\.\d+)?)([KM]?)", label)
    if not m:
        return float("nan")
    value = float(m.group(1))
    return value * {"": 1, "K": 1024, "M": 1024 * 1024}[m.group(2)]


def parse_tables(text: str):
    """Yield (title, columns, rows) for every '# <title>' table."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        if lines[i].startswith("# ") and i + 1 < len(lines):
            title = lines[i][2:].strip()
            header = lines[i + 1].split()
            if len(header) < 2:
                i += 1
                continue
            columns = header[1:]
            rows = []
            j = i + 2
            while j < len(lines):
                parts = lines[j].split()
                if len(parts) != len(columns) + 1:
                    break
                try:
                    x = parse_size(parts[0])
                    ys = [float(v) for v in parts[1:]]
                except ValueError:
                    break
                rows.append((parts[0], x, ys))
                j += 1
            if rows:
                yield title, columns, rows
            i = j
        else:
            i += 1


def plot(title, columns, rows):
    xs = [r[1] for r in rows if r[1] > 0]
    ys = [y for r in rows for y in r[2] if y > 0]
    if not xs or not ys:
        return
    lx0, lx1 = math.log10(min(xs)), math.log10(max(xs))
    ly0, ly1 = math.log10(min(ys)), math.log10(max(ys))
    if lx1 == lx0:
        lx1 = lx0 + 1
    if ly1 == ly0:
        ly1 = ly0 + 1
    grid = [[" "] * WIDTH for _ in range(HEIGHT)]
    for _, x, vals in rows:
        if x <= 0:
            continue
        col = int((math.log10(x) - lx0) / (lx1 - lx0) * (WIDTH - 1))
        for k, y in enumerate(vals):
            if y <= 0:
                continue
            row = int((math.log10(y) - ly0) / (ly1 - ly0) * (HEIGHT - 1))
            r = HEIGHT - 1 - row
            cell = grid[r][col]
            grid[r][col] = MARKS[k % len(MARKS)] if cell == " " else "!"
    print(f"\n== {title}")
    legend = "   ".join(f"{MARKS[k % len(MARKS)]}={c}" for k, c in enumerate(columns))
    print(f"   [{legend}]  ('!' = overlap)")
    print(f"   y: 10^{ly0:.1f} .. 10^{ly1:.1f} (log)")
    for r in range(HEIGHT):
        print("   |" + "".join(grid[r]))
    print("   +" + "-" * WIDTH)
    print(f"    x: 10^{lx0:.1f} .. 10^{lx1:.1f} bytes (log)")


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    text = open(sys.argv[1]).read()
    want = sys.argv[2] if len(sys.argv) > 2 else None
    shown = 0
    for title, columns, rows in parse_tables(text):
        if want and want not in title:
            continue
        plot(title, columns, rows)
        shown += 1
    if shown == 0:
        print("no matching tables found")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
