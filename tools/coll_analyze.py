#!/usr/bin/env python3
"""Reconstruct collective-op trees and cross-rank critical paths from an
mpicd Chrome trace-event file.

Builds on trace_analyze.py's per-message span reconstruction. Collective
instrumentation (see docs/OBSERVABILITY.md "Collective op spans") emits,
per op and per rank, ``coll.op_begin`` / ``coll.round`` /
``coll.step_send`` / ``coll.step_recv`` / ``coll.op_end`` instants. The
op id is identical on every rank for the same collective instance (it is
derived from the lockstep per-communicator tag epoch), so one trace file
containing all ranks lets this tool rebuild:

  op ── rank ── round ── steps, where each step's fresh msg id hangs the
  full point-to-point span tree (prep/wire/deliver, retransmits, faults)
  off that round.

From the message edges it then walks the op's **cross-rank critical
path** backwards in virtual time: starting at the straggler rank's
``op_end``, repeatedly jump through the latest receive that completed
before the current point, charging

  local    time on a rank between a receive completing and the next
           dependency (or op_end)
  deliver / wire / prep
           that message's phases, from trace_analyze.analyze_msg; the
           wire segment separately reports how much of it was
           ``fabric.uplink_wait`` (queuing behind unrelated traffic on
           the node-pair uplink serializer)
  entry_skew
           how late the path's first rank entered the op relative to
           the globally earliest ``op_begin``

The segments tile [earliest op_begin, latest op_end] exactly, so the
critical-path length equals the op's end-to-end virtual-time latency;
``--check`` verifies that identity plus round-tree completeness, which
makes this script the validation step of the ``coll_analyze`` ctest.

Usage:
    coll_analyze.py trace.json            # human-readable report
    coll_analyze.py --json trace.json     # machine-readable report
    coll_analyze.py --check trace.json    # validate, exit 1 on failure
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import trace_analyze as ta  # noqa: E402

# Keep in sync with Fam / Algo in src/p2p/coll/topology.hpp.
FAM_NAMES = {
    0: "barrier",
    1: "bcast",
    2: "gather",
    3: "allreduce",
    4: "gatherv",
    5: "allgatherv",
    6: "alltoallv",
}
ALGO_NAMES = {0: "flat", 1: "hier"}


def build_ops(events):
    """Group coll.* events into op -> rank -> round trees.

    Steps pair with rounds by record order per (op, rank): the round
    instant is emitted immediately before its phase posts, and advance()
    serializes one op's events under the op mutex, so wall-clock ts
    order is program order.
    """
    coll = sorted((e for e in events if e["cat"] == "coll"),
                  key=lambda e: e["ts"])
    ops = {}
    for ev in coll:
        a = ev["args"]
        if "op" not in a or "rank" not in a:
            continue
        op = ops.setdefault(int(a["op"]), {"id": int(a["op"]), "ranks": {}})
        rank = int(a["rank"])
        rk = op["ranks"].setdefault(rank, {
            "rank": rank,
            "begin_vt": None,
            "end_vt": None,
            "status": None,
            "fam": None,
            "algo": None,
            "rounds_declared": None,
            "rounds": [],
            "orphan_steps": 0,
        })
        name = ev["name"]
        if name == "op_begin":
            rk["begin_vt"] = ev["vt"]
            rk["fam"] = int(a.get("fam", -1))
            rk["algo"] = int(a.get("algo", 0))
        elif name == "round":
            rk["rounds"].append({"round": int(a.get("round", len(rk["rounds"]))),
                                 "vt": ev["vt"], "steps": []})
        elif name in ("step_send", "step_recv"):
            step = {
                "dir": "send" if name == "step_send" else "recv",
                "peer": int(a.get("peer", -1)),
                "sub": int(a.get("sub", 0)),
                "msg": ev["msg"],
                "vt": ev["vt"],
            }
            if rk["rounds"]:
                rk["rounds"][-1]["steps"].append(step)
            else:
                rk["orphan_steps"] += 1
        elif name == "op_end":
            rk["end_vt"] = ev["vt"]
            rk["status"] = int(a.get("status", 0))
            rk["rounds_declared"] = int(a.get("rounds", 0))
    return ops


def uplink_by_msg(events):
    """msg id -> total fabric.uplink_wait in us (send-side attributed)."""
    out = {}
    for ev in events:
        if ev["name"] == "uplink_wait" and ev["msg"] != 0:
            out[ev["msg"]] = (out.get(ev["msg"], 0.0)
                              + float(ev["args"].get("wait_ns", 0)) / 1000.0)
    return out


def op_edges(op, spans_by_msg):
    """Cross-rank dependency edges: one per send step whose message has a
    complete span (send_post and recv_complete both present)."""
    edges = []
    for rank, rk in op["ranks"].items():
        for rnd in rk["rounds"]:
            for st in rnd["steps"]:
                if st["dir"] != "send":
                    continue
                s = spans_by_msg.get(st["msg"])
                if s is not None and s["complete"]:
                    edges.append({"src": rank, "dst": st["peer"],
                                  "sub": st["sub"], "round": rnd["round"],
                                  "msg": st["msg"], "span": s})
    return edges


def critical_path(op, edges, uplink_us):
    """Backward walk from the straggler's op_end. Returns None when no
    rank has both op_begin and op_end in the trace."""
    ranks = {r: rk for r, rk in op["ranks"].items()
             if rk["begin_vt"] is not None and rk["end_vt"] is not None}
    if not ranks:
        return None
    g_begin = min(rk["begin_vt"] for rk in ranks.values())
    g_end = max(rk["end_vt"] for rk in ranks.values())
    straggler = max(ranks.values(), key=lambda rk: (rk["end_vt"], rk["rank"]))
    by_dst = {}
    for e in edges:
        by_dst.setdefault(e["dst"], []).append(e)

    segs = []
    cur_rank, cur_t = straggler["rank"], straggler["end_vt"]
    for _ in range(100000):
        cand = [e for e in by_dst.get(cur_rank, ())
                if e["span"]["complete_vt"] <= cur_t + 1e-9
                and e["span"]["post_vt"] < cur_t - 1e-9]
        if not cand:
            rk = ranks.get(cur_rank)
            entry = rk["begin_vt"] if rk is not None else g_begin
            entry = min(entry, cur_t)
            segs.append({"kind": "local", "rank": cur_rank,
                         "from_vt": entry, "to_vt": cur_t,
                         "us": cur_t - entry})
            if entry > g_begin:
                segs.append({"kind": "entry_skew", "rank": cur_rank,
                             "from_vt": g_begin, "to_vt": entry,
                             "us": entry - g_begin})
            break
        e = max(cand, key=lambda e: e["span"]["complete_vt"])
        s = e["span"]
        segs.append({"kind": "local", "rank": cur_rank,
                     "from_vt": s["complete_vt"], "to_vt": cur_t,
                     "us": cur_t - s["complete_vt"]})
        segs.append({"kind": "deliver", "rank": cur_rank, "msg": e["msg"],
                     "from_vt": s["last_arrival_vt"],
                     "to_vt": s["complete_vt"],
                     "us": s["phases"]["deliver_us"]})
        segs.append({"kind": "wire", "rank": e["src"], "msg": e["msg"],
                     "from_vt": s["first_arrival_vt"],
                     "to_vt": s["last_arrival_vt"],
                     "us": s["phases"]["wire_us"],
                     "uplink_wait_us": uplink_us.get(e["msg"], 0.0),
                     "retransmits": s["retransmits"]})
        segs.append({"kind": "prep", "rank": e["src"], "msg": e["msg"],
                     "from_vt": s["post_vt"], "to_vt": s["first_arrival_vt"],
                     "us": s["phases"]["prep_us"]})
        cur_rank, cur_t = e["src"], s["post_vt"]
    segs.reverse()
    return {
        "begin_vt": g_begin,
        "end_vt": g_end,
        "e2e_us": g_end - g_begin,
        "straggler_rank": straggler["rank"],
        "segments": segs,
        "length_us": sum(s["us"] for s in segs),
    }


def analyze_op(op, spans_by_msg, uplink_us):
    ranks = op["ranks"]
    fam = next((rk["fam"] for rk in ranks.values()
                if rk["fam"] is not None), -1)
    algo = next((rk["algo"] for rk in ranks.values()
                 if rk["algo"] is not None), 0)
    edges = op_edges(op, spans_by_msg)
    cp = critical_path(op, edges, uplink_us)
    complete_ranks = [rk for rk in ranks.values()
                      if rk["begin_vt"] is not None
                      and rk["end_vt"] is not None]
    sum_work = sum(rk["end_vt"] - rk["begin_vt"] for rk in complete_ranks)
    op_uplink = sum(uplink_us.get(e["msg"], 0.0) for e in edges)
    rounds = max((len(rk["rounds"]) for rk in ranks.values()), default=0)
    res = {
        "op": op["id"],
        "fam": FAM_NAMES.get(fam, "fam%d" % fam),
        "algo": ALGO_NAMES.get(algo, "algo%d" % algo),
        "ranks": len(ranks),
        "complete_ranks": len(complete_ranks),
        "rounds": rounds,
        "messages": len(edges),
        "retransmits": sum(e["span"]["retransmits"] for e in edges),
        "uplink_wait_us": op_uplink,
        "status_worst": max((rk["status"] or 0 for rk in ranks.values()),
                            default=0),
        "tree": op,
        "critical_path": cp,
    }
    if cp is not None:
        res["e2e_us"] = cp["e2e_us"]
        res["cp_us"] = cp["length_us"]
        res["sum_work_us"] = sum_work
        res["cp_vs_work"] = (cp["length_us"] / sum_work
                             if sum_work > 0 else 1.0)
        # Per-rank attribution of the critical path: what each rank
        # contributed to the op's end-to-end latency. Wire time is the
        # fabric's, not any rank's; entry skew names the late enterer.
        attr = {}
        for s in cp["segments"]:
            if s["kind"] in ("local", "prep", "deliver", "entry_skew"):
                attr[s["rank"]] = attr.get(s["rank"], 0.0) + s["us"]
        res["cp_rank_attr_us"] = attr
    return res


def aggregate_ops(op_results):
    with_cp = [r for r in op_results if r["critical_path"] is not None]
    lat = sorted(r["e2e_us"] for r in with_cp)
    straggler_counts = {}
    for r in with_cp:
        sr = r["critical_path"]["straggler_rank"]
        straggler_counts[sr] = straggler_counts.get(sr, 0) + 1
    by_kind = {}
    for r in with_cp:
        key = "%s_%s" % (r["fam"], r["algo"])
        k = by_kind.setdefault(key, {"ops": 0, "e2e_us": [],
                                     "uplink_wait_us": 0.0})
        k["ops"] += 1
        k["e2e_us"].append(r["e2e_us"])
        k["uplink_wait_us"] += r["uplink_wait_us"]
    for k in by_kind.values():
        vals = sorted(k.pop("e2e_us"))
        k["e2e_p50_us"] = ta.percentile(vals, 50)
        k["e2e_p99_us"] = ta.percentile(vals, 99)
        k["e2e_max_us"] = vals[-1] if vals else 0.0
    return {
        "ops": len(op_results),
        "ops_with_critical_path": len(with_cp),
        "e2e_us": {
            "p50": ta.percentile(lat, 50),
            "p95": ta.percentile(lat, 95),
            "p99": ta.percentile(lat, 99),
            "max": lat[-1] if lat else 0.0,
        },
        "uplink_wait_us": sum(r["uplink_wait_us"] for r in op_results),
        "straggler_counts": straggler_counts,
        "by_kind": by_kind,
    }


def check(op_results, agg, tolerance_us):
    """Validation mode for the ctest `coll_analyze` target."""
    errors = []
    if agg["ops_with_critical_path"] == 0:
        errors.append("no collective op with a critical path reconstructed "
                      "(missing coll.op_begin/op_end events)")
    for r in op_results:
        tag = "op %x (%s/%s)" % (r["op"], r["fam"], r["algo"])
        if r["complete_ranks"] != r["ranks"]:
            errors.append("%s: %d of %d ranks missing op_begin/op_end"
                          % (tag, r["ranks"] - r["complete_ranks"],
                             r["ranks"]))
        for rank, rk in sorted(r["tree"]["ranks"].items()):
            if rk["orphan_steps"]:
                errors.append("%s rank %d: %d steps outside any round"
                              % (tag, rank, rk["orphan_steps"]))
            ordinals = [rd["round"] for rd in rk["rounds"]]
            if ordinals != list(range(len(ordinals))):
                errors.append("%s rank %d: round ordinals %r not 0..%d"
                              % (tag, rank, ordinals, len(ordinals) - 1))
            if (rk["rounds_declared"] is not None
                    and rk["rounds_declared"] != len(rk["rounds"])):
                errors.append("%s rank %d: op_end declares %d rounds, trace "
                              "has %d" % (tag, rank, rk["rounds_declared"],
                                          len(rk["rounds"])))
        cp = r["critical_path"]
        if cp is None:
            continue
        if abs(cp["length_us"] - cp["e2e_us"]) > tolerance_us:
            errors.append("%s: critical path sums to %.3f us but op e2e is "
                          "%.3f us" % (tag, cp["length_us"], cp["e2e_us"]))
        if cp["length_us"] > cp["e2e_us"] + tolerance_us:
            errors.append("%s: critical path longer than op e2e" % tag)
        t = None
        for s in cp["segments"]:
            if s["to_vt"] < s["from_vt"] - 1e-9:
                errors.append("%s: segment %s runs backwards" % (tag, s["kind"]))
            if t is not None and s["kind"] != "entry_skew" \
                    and s["from_vt"] < t - 1e-6:
                errors.append("%s: critical path not contiguous at %s"
                              % (tag, s["kind"]))
            t = s["to_vt"]
        # A hop's uplink queuing happens between the send post and the
        # packet's arrival. For a single-packet message that whole window
        # is the span's *prep* phase (first_arrival == last_arrival, so
        # wire is 0 by construction) — bound the wait by prep+wire of the
        # same message, not by the wire phase alone.
        hop_us = {}
        for seg in cp["segments"]:
            if seg["kind"] in ("prep", "wire"):
                hop_us[seg["msg"]] = hop_us.get(seg["msg"], 0.0) + seg["us"]
        for seg in cp["segments"]:
            if seg["kind"] == "wire" and \
                    seg.get("uplink_wait_us", 0.0) > \
                    hop_us.get(seg["msg"], 0.0) + tolerance_us:
                errors.append("%s msg %d: uplink wait %.3f us exceeds hop "
                              "prep+wire %.3f us" % (tag, seg["msg"],
                                                     seg["uplink_wait_us"],
                                                     hop_us.get(seg["msg"],
                                                                0.0)))
    return errors


def print_report(op_results, agg, out=sys.stdout):
    w = out.write
    w("collective ops (virtual us):\n")
    w("  %10s %-10s %-4s %5s %6s %5s %9s %9s %8s %9s %5s\n"
      % ("op", "fam", "algo", "ranks", "rounds", "msgs", "e2e", "cp",
         "cp/work", "uplink", "strag"))
    for r in sorted(op_results, key=lambda r: r["op"]):
        cp = r["critical_path"]
        if cp is None:
            w("  %10x %-10s %-4s %5d %6d %5d  (incomplete: %d/%d ranks)\n"
              % (r["op"], r["fam"], r["algo"], r["ranks"], r["rounds"],
                 r["messages"], r["complete_ranks"], r["ranks"]))
            continue
        w("  %10x %-10s %-4s %5d %6d %5d %9.2f %9.2f %8.3f %9.2f %5d\n"
          % (r["op"], r["fam"], r["algo"], r["ranks"], r["rounds"],
             r["messages"], r["e2e_us"], r["cp_us"], r["cp_vs_work"],
             r["uplink_wait_us"], cp["straggler_rank"]))
    w("\naggregate:\n")
    w("  ops: %d (%d with a full cross-rank critical path)\n"
      % (agg["ops"], agg["ops_with_critical_path"]))
    lat = agg["e2e_us"]
    w("  op e2e us: p50=%.2f p95=%.2f p99=%.2f max=%.2f\n"
      % (lat["p50"], lat["p95"], lat["p99"], lat["max"]))
    w("  uplink wait total: %.2f us\n" % agg["uplink_wait_us"])
    if agg["straggler_counts"]:
        w("  stragglers: %s\n"
          % "  ".join("rank %d x%d" % (r, c) for r, c in
                      sorted(agg["straggler_counts"].items(),
                             key=lambda rc: -rc[1])))
    for key, k in sorted(agg["by_kind"].items()):
        w("  %-16s ops=%-3d p50=%.2fus p99=%.2fus max=%.2fus uplink=%.2fus\n"
          % (key, k["ops"], k["e2e_p50_us"], k["e2e_p99_us"],
             k["e2e_max_us"], k["uplink_wait_us"]))

    slowest = max((r for r in op_results if r["critical_path"] is not None),
                  key=lambda r: r["e2e_us"], default=None)
    if slowest is not None:
        cp = slowest["critical_path"]
        w("\nslowest op %x (%s/%s, %.2f us) critical path:\n"
          % (slowest["op"], slowest["fam"], slowest["algo"],
             slowest["e2e_us"]))
        for s in cp["segments"]:
            extra = ""
            if s["kind"] == "wire":
                extra = " uplink=%.2fus rexmt=%d" % (
                    s.get("uplink_wait_us", 0.0), s.get("retransmits", 0))
            if "msg" in s:
                extra += " msg=%d" % s["msg"]
            w("  %-10s rank=%-4d %9.2f..%-9.2f %8.2f us%s\n"
              % (s["kind"], s["rank"], s["from_vt"], s["to_vt"], s["us"],
                 extra))
        attr = slowest.get("cp_rank_attr_us", {})
        if attr:
            w("  rank attribution: %s\n"
              % "  ".join("r%d=%.2fus" % (r, us) for r, us in
                          sorted(attr.items(), key=lambda x: -x[1])))


def strip_trees(op_results):
    """Drop the verbose per-event trees for JSON output; keep structure."""
    out = []
    for r in op_results:
        c = dict(r)
        tree = c.pop("tree")
        c["ranks_detail"] = {
            str(rank): {
                "begin_vt": rk["begin_vt"],
                "end_vt": rk["end_vt"],
                "status": rk["status"],
                "rounds": [
                    {"round": rd["round"], "vt": rd["vt"],
                     "steps": rd["steps"]}
                    for rd in rk["rounds"]
                ],
            }
            for rank, rk in sorted(tree["ranks"].items())
        }
        out.append(c)
    return out


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace-event JSON written by "
                                  "MPICD_TRACE_FILE / trace::write_chrome_json")
    ap.add_argument("--json", action="store_true", dest="as_json",
                    help="emit the report as JSON")
    ap.add_argument("--check", action="store_true",
                    help="validate op/round/critical-path reconstruction; "
                         "exit 1 on failure")
    ap.add_argument("--tolerance-us", type=float, default=0.01,
                    help="allowed |cp - e2e| in --check (default 0.01)")
    args = ap.parse_args(argv)

    events = ta.load_events(args.trace)
    spans_by_msg = {m: ta.analyze_msg(m, evs)
                    for m, evs in ta.group_by_msg(events).items()}
    uplink = uplink_by_msg(events)
    ops = build_ops(events)
    op_results = [analyze_op(op, spans_by_msg, uplink)
                  for _, op in sorted(ops.items())]
    agg = aggregate_ops(op_results)

    if args.as_json:
        json.dump({"ops": strip_trees(op_results), "aggregate": agg},
                  sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        print_report(op_results, agg)

    if args.check:
        errors = check(op_results, agg, args.tolerance_us)
        for e in errors:
            sys.stderr.write("coll_analyze: CHECK FAILED: %s\n" % e)
        if errors:
            return 1
        sys.stderr.write("coll_analyze: check OK (%d ops, %d with critical "
                         "path)\n" % (agg["ops"],
                                      agg["ops_with_critical_path"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
