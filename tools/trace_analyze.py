#!/usr/bin/env python3
"""Reconstruct per-message spans from an mpicd Chrome trace-event file.

Every event the stack records while a message scope is open carries the
process-unique message id in ``args.msg`` (see docs/OBSERVABILITY.md).
This tool groups the events of one trace file by that id and rebuilds,
for each message that completed on the receive side, the span

    send_post ──prep──> first wire arrival ──wire──> last data arrival
              ──deliver──> recv_complete

where the three phases are defined on *virtual* time (``args.vt_us``):

  prep     time from posting the send to the first packet's arrival
           edge: datatype lowering, custom pack, eager/RTS injection
           plus one wire traversal
  wire     time from the first to the last data-bearing arrival:
           fragment pipelining, link serialization, and every
           retransmit/duplicate penalty the fault layer induced
  deliver  time from the last arrival to receive completion: unpack,
           scatter into regions, completion bookkeeping

The milestones are chosen so the phases sum *exactly* to the end-to-end
latency (recv_complete - send_post); ``--check`` verifies that
identity, which makes this script double as the validation step of the
``analyze``-labelled ctest target.

Usage:
    trace_analyze.py trace.json              # human-readable report
    trace_analyze.py --json trace.json      # machine-readable report
    trace_analyze.py --check trace.json     # validate, exit 1 on failure
"""

import argparse
import json
import math
import sys

# Event names that mark a data-bearing wire arrival for a message.
# net.tx instants are stamped with the packet's *arrival* virtual time.
# rdma_frag/rndv_rdma cover the zero-copy rendezvous path, where data
# moves by RDMA write instead of FRAG packets: their vt is the instant
# the written bytes land, so they anchor the wire phase that would
# otherwise collapse to zero on RDMA transfers.
WIRE_ARRIVAL = {"tx", "tx_ctrl", "frag_recv", "rndv_fin", "rdma_frag",
                "rndv_rdma"}
# Control-plane kinds excluded from the "last data arrival" milestone:
# an ACK arriving after the payload must not push the wire phase out.
# Keep in sync with src/ucx/wire.hpp.
KIND_EAGER = 1
KIND_RTS = 2
KIND_CTS = 3
KIND_FIN = 4
KIND_FRAG = 5
KIND_ACK = 6
DATA_KINDS = {KIND_EAGER, KIND_FRAG, KIND_FIN}


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents", [])
    out = []
    for ev in events:
        args = ev.get("args", {})
        out.append(
            {
                "name": ev.get("name", ""),
                "cat": ev.get("cat", ""),
                "ts": float(ev.get("ts", 0.0)),
                "dur": float(ev.get("dur", -1.0)) if "dur" in ev else -1.0,
                "vt": float(args["vt_us"]) if "vt_us" in args else None,
                "msg": int(args.get("msg", 0)),
                "args": args,
            }
        )
    return out


def group_by_msg(events):
    msgs = {}
    for ev in events:
        if ev["msg"] != 0:
            msgs.setdefault(ev["msg"], []).append(ev)
    return msgs


def is_data_arrival(ev):
    if ev["name"] not in WIRE_ARRIVAL or ev["vt"] is None:
        return False
    if ev["name"] in ("frag_recv", "rndv_fin", "rdma_frag", "rndv_rdma"):
        return True
    kind = ev["args"].get("kind")
    # tx/tx_ctrl: only count packets that carry (or complete) the data
    # phase; ACK/CTS arrivals are control traffic.
    return kind in DATA_KINDS


def analyze_msg(msg_id, events):
    """Return the reconstructed span for one message, or None when the
    trace does not contain both endpoints (e.g. ring overwrote them)."""
    post = [e for e in events if e["name"] == "send_post" and e["vt"] is not None]
    done = [e for e in events if e["name"] == "recv_complete" and e["vt"] is not None]
    arrivals = sorted((e for e in events if is_data_arrival(e)), key=lambda e: e["vt"])
    span = {
        "msg": msg_id,
        "events": len(events),
        "retransmits": sum(1 for e in events if e["name"] == "retransmit"),
        "faults": sum(1 for e in events if e["name"].startswith("fault_")),
        "complete": False,
    }
    if not post or not done or not arrivals:
        return span
    m0 = post[0]["vt"]
    m3 = max(e["vt"] for e in done)
    # Clamp arrival milestones into [m0, m3]: a retransmitted packet can
    # be scheduled to arrive after the receiver already completed from an
    # earlier copy, and the phases must still tile the e2e interval.
    m1 = min(max(arrivals[0]["vt"], m0), m3)
    m2 = min(max(arrivals[-1]["vt"], m1), m3)
    bytes_recv = max((e["args"].get("bytes", 0) for e in done), default=0)
    span.update(
        {
            "complete": True,
            "post_vt": m0,
            "first_arrival_vt": m1,
            "last_arrival_vt": m2,
            "complete_vt": m3,
            "bytes": bytes_recv,
            "e2e_us": m3 - m0,
            "phases": {
                "prep_us": m1 - m0,
                "wire_us": m2 - m1,
                "deliver_us": m3 - m2,
            },
            "critical_path": [
                {"milestone": "send_post", "vt_us": m0},
                {"milestone": "first_data_arrival", "vt_us": m1},
                {"milestone": "last_data_arrival", "vt_us": m2},
                {"milestone": "recv_complete", "vt_us": m3},
            ],
        }
    )
    return span


def percentile(sorted_vals, p):
    if not sorted_vals:
        return 0.0
    k = (len(sorted_vals) - 1) * (p / 100.0)
    lo = math.floor(k)
    hi = math.ceil(k)
    if lo == hi:
        return sorted_vals[int(k)]
    return sorted_vals[lo] + (sorted_vals[hi] - sorted_vals[lo]) * (k - lo)


def aggregate(spans):
    complete = [s for s in spans if s["complete"]]
    lat = sorted(s["e2e_us"] for s in complete)
    agg = {
        "messages": len(spans),
        "complete_spans": len(complete),
        "retransmits": sum(s["retransmits"] for s in spans),
        "faults": sum(s["faults"] for s in spans),
        "latency_us": {
            "p50": percentile(lat, 50),
            "p95": percentile(lat, 95),
            "p99": percentile(lat, 99),
            "max": lat[-1] if lat else 0.0,
        },
        "phase_totals_us": {
            "prep": sum(s["phases"]["prep_us"] for s in complete),
            "wire": sum(s["phases"]["wire_us"] for s in complete),
            "deliver": sum(s["phases"]["deliver_us"] for s in complete),
        },
    }
    total = sum(agg["phase_totals_us"].values())
    agg["phase_share"] = {
        k: (v / total if total > 0 else 0.0)
        for k, v in agg["phase_totals_us"].items()
    }
    return agg


def check(spans, agg, tolerance_us):
    """Validation mode for the ctest `analyze` target."""
    errors = []
    if agg["complete_spans"] == 0:
        errors.append("no complete span reconstructed (missing send_post / "
                      "recv_complete / arrival events)")
    for s in spans:
        if not s["complete"]:
            continue
        if not s["critical_path"]:
            errors.append("msg %d: empty critical path" % s["msg"])
        phase_sum = sum(s["phases"].values())
        if abs(phase_sum - s["e2e_us"]) > tolerance_us:
            errors.append(
                "msg %d: phases sum to %.3f us but e2e is %.3f us"
                % (s["msg"], phase_sum, s["e2e_us"])
            )
        vts = [m["vt_us"] for m in s["critical_path"]]
        if vts != sorted(vts):
            errors.append("msg %d: critical path is not monotone" % s["msg"])
    return errors


def print_report(spans, agg, out=sys.stdout):
    w = out.write
    w("per-message spans (virtual us):\n")
    w("  %8s %10s %10s %10s %10s %10s %6s %6s\n"
      % ("msg", "bytes", "e2e", "prep", "wire", "deliver", "rexmt", "evts"))
    for s in sorted(spans, key=lambda s: s["msg"]):
        if s["complete"]:
            w("  %8d %10d %10.2f %10.2f %10.2f %10.2f %6d %6d\n"
              % (s["msg"], s["bytes"], s["e2e_us"], s["phases"]["prep_us"],
                 s["phases"]["wire_us"], s["phases"]["deliver_us"],
                 s["retransmits"], s["events"]))
        else:
            w("  %8d %10s %10s %10s %10s %10s %6d %6d  (incomplete)\n"
              % (s["msg"], "-", "-", "-", "-", "-", s["retransmits"],
                 s["events"]))
    w("\naggregate:\n")
    w("  messages: %d (%d with a complete span)\n"
      % (agg["messages"], agg["complete_spans"]))
    w("  retransmits: %d   fault events: %d\n"
      % (agg["retransmits"], agg["faults"]))
    lat = agg["latency_us"]
    w("  e2e latency us: p50=%.2f p95=%.2f p99=%.2f max=%.2f\n"
      % (lat["p50"], lat["p95"], lat["p99"], lat["max"]))
    w("  phase breakdown: ")
    w("  ".join("%s=%.2fus (%.0f%%)"
                % (k, agg["phase_totals_us"][k], 100.0 * agg["phase_share"][k])
                for k in ("prep", "wire", "deliver")))
    w("\n")


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace-event JSON written by "
                                  "MPICD_TRACE_FILE / trace::write_chrome_json")
    ap.add_argument("--json", action="store_true", dest="as_json",
                    help="emit the report as JSON")
    ap.add_argument("--check", action="store_true",
                    help="validate span reconstruction; exit 1 on failure")
    ap.add_argument("--tolerance-us", type=float, default=0.01,
                    help="allowed |sum(phases) - e2e| in --check (default "
                         "0.01, i.e. formatting rounding only)")
    args = ap.parse_args(argv)

    events = load_events(args.trace)
    spans = [analyze_msg(m, evs) for m, evs in sorted(group_by_msg(events).items())]
    agg = aggregate(spans)

    if args.as_json:
        json.dump({"spans": spans, "aggregate": agg}, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        print_report(spans, agg)

    if args.check:
        errors = check(spans, agg, args.tolerance_us)
        for e in errors:
            sys.stderr.write("trace_analyze: CHECK FAILED: %s\n" % e)
        if errors:
            return 1
        sys.stderr.write("trace_analyze: check OK (%d complete spans)\n"
                         % agg["complete_spans"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
