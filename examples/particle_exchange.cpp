// Particle halo exchange — the molecular-dynamics scenario that motivates
// the paper's introduction: each rank owns a dynamic particle list; after
// a "timestep", boundary particles migrate to the neighbour in a ring.
// The particle list is a heap-allocated, run-time-sized structure, so the
// natural MPI encoding would be multiple messages (count + payload) or a
// datatype rebuilt every step; with the custom API it is one message.
#include <cstdio>
#include <random>
#include <vector>

#include "core/builtin_serialize.hpp"
#include "p2p/runner.hpp"

namespace {

using namespace mpicd;

struct Particle {
    double pos[3];
    double vel[3];
    std::int32_t id;
    std::int32_t kind;
};
static_assert(std::is_trivially_copyable_v<Particle>);

// A migration message: the (dynamic) list of departing particles. Lengths
// in-band, particle payload as one region per list — exactly the pattern
// CustomSerialize<std::vector<T>> provides.
using Migration = std::vector<Particle>;

} // namespace

int main() {
    using namespace mpicd;
    constexpr int kRanks = 4;
    constexpr int kSteps = 3;

    p2p::run_world(kRanks, [](p2p::Communicator& comm) {
        const int rank = comm.rank();
        const int right = (rank + 1) % comm.size();
        const int left = (rank + comm.size() - 1) % comm.size();
        std::mt19937 rng(static_cast<unsigned>(rank) * 7919u + 17u);
        std::uniform_int_distribution<int> count_dist(50, 400);

        std::vector<Particle> owned(1000);
        for (std::size_t i = 0; i < owned.size(); ++i) {
            owned[i].id = rank * 100000 + static_cast<std::int32_t>(i);
            owned[i].kind = static_cast<std::int32_t>(i % 4);
            for (int d = 0; d < 3; ++d) {
                owned[i].pos[d] = static_cast<double>(rank) + 0.001 * i;
                owned[i].vel[d] = 0.1 * d;
            }
        }

        const auto& vec_type = core::custom_datatype_of<Migration>();
        for (int step = 0; step < kSteps; ++step) {
            // Select a dynamic number of departing particles.
            const int departing = count_dist(rng);
            Migration out(owned.end() - departing, owned.end());
            owned.resize(owned.size() - static_cast<std::size_t>(departing));

            // Announce the incoming count (tiny eager message), then move
            // the particle payload in ONE custom-datatype message — no
            // extra count+payload message pair racing on the tag space.
            const long long n_out = static_cast<long long>(out.size());
            (void)comm.send_bytes(&n_out, sizeof(n_out), right, 100 + step);
            long long n_in = 0;
            (void)comm.recv_bytes(&n_in, sizeof(n_in), left, 100 + step);

            Migration in(static_cast<std::size_t>(n_in));
            auto rr = comm.irecv_custom(&in, 1, vec_type, left, 200 + step);
            auto rs = comm.isend_custom(&out, 1, vec_type, right, 200 + step);
            (void)rs.wait();
            const auto st = rr.wait();

            owned.insert(owned.end(), in.begin(), in.end());
            std::printf("[rank %d] step %d: sent %lld, received %lld particles "
                        "(%lld bytes, vtime %.1f us), now own %zu\n",
                        rank, step, n_out, n_in, st.bytes, st.vtime, owned.size());
        }
    });
    return 0;
}
