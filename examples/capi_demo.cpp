// C API demo: the paper's proposed interface verbatim (Listing 2). A
// "rope" — a string split across several heap fragments — is sent as one
// MPI message: fragment lengths packed in-band, fragment payloads exposed
// as memory regions. Written against capi.h the way a C application would.
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#include "capi/capi.h"

/* A rope: n heap fragments of varying length. */
typedef struct {
    int nfrag;
    char** frag;
    long long* len;
} rope_t;

static int rope_state(void* context, const void* src, MPI_Count src_count,
                      void** state) {
    (void)context;
    (void)src_count;
    *state = (void*)src; /* the rope itself is all the state we need */
    return MPI_SUCCESS;
}

static int rope_state_free(void* state) {
    (void)state;
    return MPI_SUCCESS;
}

static int rope_query(void* state, const void* buf, MPI_Count count,
                      MPI_Count* packed_size) {
    const rope_t* r = (const rope_t*)buf;
    (void)state;
    (void)count;
    /* in-band portion: fragment count + one length per fragment */
    *packed_size = (MPI_Count)sizeof(int) + r->nfrag * (MPI_Count)sizeof(long long);
    return MPI_SUCCESS;
}

static int rope_pack(void* state, const void* buf, MPI_Count count, MPI_Count offset,
                     void* dst, MPI_Count dst_size, MPI_Count* used) {
    const rope_t* r = (const rope_t*)buf;
    char header[1024];
    MPI_Count total, n;
    (void)state;
    (void)count;
    memcpy(header, &r->nfrag, sizeof(int));
    memcpy(header + sizeof(int), r->len, (size_t)r->nfrag * sizeof(long long));
    total = (MPI_Count)sizeof(int) + r->nfrag * (MPI_Count)sizeof(long long);
    n = total - offset < dst_size ? total - offset : dst_size;
    memcpy(dst, header + offset, (size_t)n);
    *used = n;
    return MPI_SUCCESS;
}

static int rope_unpack(void* state, void* buf, MPI_Count count, MPI_Count offset,
                       const void* src, MPI_Count src_size) {
    rope_t* r = (rope_t*)buf;
    int nfrag;
    (void)state;
    (void)count;
    if (offset != 0) return MPI_ERR_OTHER; /* header fits one fragment */
    memcpy(&nfrag, src, sizeof(int));
    if (nfrag != r->nfrag) return MPI_ERR_TRUNCATE;
    if (src_size != (MPI_Count)sizeof(int) + nfrag * (MPI_Count)sizeof(long long))
        return MPI_ERR_OTHER;
    /* lengths must match the receiver's pre-allocated fragments */
    {
        const long long* lens = (const long long*)((const char*)src + sizeof(int));
        int i;
        for (i = 0; i < nfrag; ++i) {
            if (lens[i] != r->len[i]) return MPI_ERR_TRUNCATE;
        }
    }
    return MPI_SUCCESS;
}

static int rope_region_count(void* state, void* buf, MPI_Count count,
                             MPI_Count* region_count) {
    (void)state;
    (void)count;
    *region_count = ((rope_t*)buf)->nfrag;
    return MPI_SUCCESS;
}

static int rope_region(void* state, void* buf, MPI_Count count,
                       MPI_Count region_count, void* reg_bases[],
                       MPI_Count reg_lens[], MPI_Datatype reg_types[]) {
    rope_t* r = (rope_t*)buf;
    MPI_Count i;
    (void)state;
    (void)count;
    if (region_count != r->nfrag) return MPI_ERR_OTHER;
    for (i = 0; i < region_count; ++i) {
        reg_bases[i] = r->frag[i];
        reg_lens[i] = r->len[i];
        reg_types[i] = NULL; /* bytes */
    }
    return MPI_SUCCESS;
}

static rope_t make_rope(int nfrag, int fill) {
    rope_t r;
    int i;
    r.nfrag = nfrag;
    r.frag = (char**)malloc((size_t)nfrag * sizeof(char*));
    r.len = (long long*)malloc((size_t)nfrag * sizeof(long long));
    for (i = 0; i < nfrag; ++i) {
        r.len[i] = 64 * (i + 1);
        r.frag[i] = (char*)malloc((size_t)r.len[i]);
        memset(r.frag[i], fill ? 'a' + i : 0, (size_t)r.len[i]);
    }
    return r;
}

static void free_rope(rope_t* r) {
    int i;
    for (i = 0; i < r->nfrag; ++i) free(r->frag[i]);
    free(r->frag);
    free(r->len);
}

static void rank_main(void* arg) {
    int rank;
    MPI_Datatype rope_type;
    (void)arg;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);

    /* Paper Listing 2, verbatim signature. */
    if (MPI_Type_create_custom(rope_state, rope_state_free, rope_query, rope_pack,
                               rope_unpack, rope_region_count, rope_region, NULL,
                               /*inorder=*/0, &rope_type) != MPI_SUCCESS) {
        printf("type creation failed\n");
        return;
    }

    if (rank == 0) {
        rope_t rope = make_rope(5, 1);
        MPI_Send(&rope, 1, rope_type, 1, 42, MPI_COMM_WORLD);
        printf("[rank 0] sent a 5-fragment rope in one message, vtime %.2f us\n",
               MPIX_Wtime_virtual());
        free_rope(&rope);
    } else {
        rope_t rope = make_rope(5, 0); /* receiver pre-allocates the shape */
        MPI_Status st;
        MPI_Recv(&rope, 1, rope_type, 0, 42, MPI_COMM_WORLD, &st);
        printf("[rank 1] received rope, fragment 4 starts with '%c%c%c'\n",
               rope.frag[4][0], rope.frag[4][1], rope.frag[4][2]);
        free_rope(&rope);
    }
    MPI_Type_free(&rope_type);
}

int main(void) {
    return MPIX_Run_world(2, rank_main, NULL) == MPI_SUCCESS ? 0 : 1;
}
