// 2D stencil halo exchange comparing classic derived datatypes with the
// custom API on the same communication pattern — the "existing C code"
// perspective. Each rank owns an interior block of a global grid; row
// halos are contiguous, column halos are strided. Column halos are where
// derived datatypes and the custom region callbacks meet head-on.
#include <cstdio>
#include <vector>

#include "core/custom_type.hpp"
#include "dt/datatype.hpp"
#include "p2p/runner.hpp"

namespace {

using namespace mpicd;

constexpr Count kN = 256;     // local grid is kN x kN doubles
constexpr int kIters = 4;

struct Grid {
    std::vector<double> cells;
    Grid() : cells(static_cast<std::size_t>((kN + 2) * (kN + 2)), 0.0) {}
    [[nodiscard]] double* at(Count row) {
        return cells.data() + row * (kN + 2);
    }
};

// Custom datatype exposing a grid column as kN memory regions of one
// double each — deliberately the fine-grained case, to contrast with the
// derived-datatype vector.
struct ColumnView {
    Grid* grid = nullptr;
    Count col = 0;
};

Status col_query(void*, const void*, Count, Count* size) {
    *size = 0;
    return Status::success;
}
Status col_nop_pack(void*, const void*, Count, Count, void*, Count, Count*) {
    return Status::err_internal;
}
Status col_nop_unpack(void*, void*, Count, Count, const void*, Count) {
    return Status::err_internal;
}
Status col_region_count(void*, void*, Count, Count* n) {
    *n = kN;
    return Status::success;
}
Status col_region(void*, void* buf, Count, Count n, void* bases[], Count lens[]) {
    auto* view = static_cast<ColumnView*>(buf);
    for (Count i = 0; i < n; ++i) {
        bases[i] = view->grid->at(i + 1) + view->col;
        lens[i] = 8;
    }
    return Status::success;
}

const core::CustomDatatype& column_type() {
    static const core::CustomDatatype type = [] {
        core::CustomCallbacks cb;
        cb.query = col_query;
        cb.pack = col_nop_pack;
        cb.unpack = col_nop_unpack;
        cb.region_count = col_region_count;
        cb.region = col_region;
        core::CustomDatatype out;
        (void)core::CustomDatatype::create(cb, &out);
        return out;
    }();
    return type;
}

} // namespace

int main() {
    using namespace mpicd;

    // 1D decomposition over 4 ranks; left/right column halos.
    p2p::run_world(4, [](p2p::Communicator& comm) {
        const int rank = comm.rank();
        const int right = (rank + 1) % comm.size();
        const int left = (rank + comm.size() - 1) % comm.size();

        Grid grid;
        for (Count r = 1; r <= kN; ++r)
            for (Count c = 1; c <= kN; ++c) grid.at(r)[c] = rank + 0.001 * (r * kN + c);

        // Derived datatype for a column: kN doubles with row stride.
        auto col_dt = dt::Datatype::vector(kN, 1, kN + 2, dt::type_double());
        (void)col_dt->commit();

        const SimTime t0 = comm.now();
        for (int it = 0; it < kIters; ++it) {
            // Classic derived-datatype halo: right edge out, left halo in.
            auto rr = comm.irecv(grid.at(1) + 0, 1, col_dt, left, 10 + it);
            auto rs = comm.isend(grid.at(1) + kN, 1, col_dt, right, 10 + it);
            (void)rs.wait();
            (void)rr.wait();
        }
        const SimTime t_ddt = comm.now() - t0;

        const SimTime t1 = comm.now();
        for (int it = 0; it < kIters; ++it) {
            // Same pattern through custom memory regions.
            ColumnView out_col{&grid, kN};
            ColumnView in_col{&grid, 0};
            auto rr = comm.irecv_custom(&in_col, 1, column_type(), left, 50 + it);
            auto rs = comm.isend_custom(&out_col, 1, column_type(), right, 50 + it);
            (void)rs.wait();
            (void)rr.wait();
        }
        const SimTime t_custom = comm.now() - t1;

        std::printf("[rank %d] column halo x%d: derived-datatype %.1f us, "
                    "custom-regions %.1f us (fine-grained regions pay per-entry "
                    "costs — Table I's lesson)\n",
                    rank, kIters, t_ddt, t_custom);
    });
    return 0;
}
