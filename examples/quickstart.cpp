// Quickstart: send a dynamic C++ object (a vector of vectors — the paper's
// double-vector type, impossible to express as a classic MPI derived
// datatype) between two ranks with the custom datatype API.
//
//   $ ./examples/quickstart
//
// Ranks run as threads over the simulated fabric; the API mirrors what a
// real MPI with the paper's extension would look like.
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/builtin_serialize.hpp"
#include "p2p/runner.hpp"

int main() {
    using namespace mpicd;
    using Sub = std::vector<std::int32_t>;

    p2p::run_world(2, [](p2p::Communicator& comm) {
        // The committed custom datatype for std::vector<int32_t> elements:
        // sub-vector lengths travel in-band, payloads ride as zero-copy
        // memory regions (one iovec entry each).
        const auto& type = core::custom_datatype_of<Sub>();

        if (comm.rank() == 0) {
            std::vector<Sub> message(4);
            for (std::size_t i = 0; i < message.size(); ++i) {
                message[i].resize(100 * (i + 1));
                std::iota(message[i].begin(), message[i].end(),
                          static_cast<std::int32_t>(1000 * i));
            }
            const auto st = comm.send_custom(message.data(),
                                             static_cast<Count>(message.size()),
                                             type, /*dst=*/1, /*tag=*/0);
            std::printf("[rank 0] sent 4 sub-vectors (%s), vtime %.2f us\n",
                        to_cstring(st.status), st.vtime);
        } else {
            // The receive side pre-sizes the object (the paper's §VI
            // contract: region lengths must be known before data arrives).
            std::vector<Sub> message(4);
            for (std::size_t i = 0; i < message.size(); ++i)
                message[i].resize(100 * (i + 1));
            const auto st = comm.recv_custom(message.data(),
                                             static_cast<Count>(message.size()),
                                             type, /*src=*/0, /*tag=*/0);
            std::printf("[rank 1] received %lld bytes (%s), vtime %.2f us\n",
                        st.bytes, to_cstring(st.status), st.vtime);
            std::printf("[rank 1] message[3][0..4] = %d %d %d %d %d\n",
                        message[3][0], message[3][1], message[3][2], message[3][3],
                        message[3][4]);
        }
    });
    return 0;
}
