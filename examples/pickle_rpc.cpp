// Python-object RPC — the mpi4py scenario of paper §V-B. A "driver" rank
// ships a dynamically-typed result object (dict of scalars + NumPy-like
// arrays) to a "collector" rank under all three transfer strategies and
// reports the virtual cost of each, showing why out-of-band pickle through
// the custom datatype engine is the preferred encoding.
#include <cstdio>

#include "p2p/runner.hpp"
#include "pysim/mpi4py_sim.hpp"

namespace {

using namespace mpicd;
using pysim::PyValue;

PyValue make_result_object() {
    pysim::PyDict d;
    d.emplace_back("experiment", PyValue("turbulence-1024"));
    d.emplace_back("step", PyValue(771));
    d.emplace_back("residual", PyValue(3.5e-7));
    d.emplace_back("converged", PyValue(false));
    pysim::PyList fields;
    fields.emplace_back(pysim::NdArray::pattern(pysim::DType::f64, {512, 512}, 1));
    fields.emplace_back(pysim::NdArray::pattern(pysim::DType::f32, {256, 256}, 2));
    fields.emplace_back(pysim::NdArray::pattern(pysim::DType::i64, {65536}, 3));
    d.emplace_back("fields", PyValue(std::move(fields)));
    return PyValue(std::move(d));
}

} // namespace

int main() {
    using pysim::PyXfer;
    const auto object = make_result_object();
    std::printf("result object payload: %lld bytes of array data\n",
                object.payload_bytes());

    for (const auto method : {PyXfer::basic, PyXfer::oob_multi, PyXfer::oob_cdt}) {
        pysim::PyXferOptions opts;
        opts.method = method;
        p2p::run_world(2, [&](p2p::Communicator& comm) {
            if (comm.rank() == 0) {
                const SimTime before = comm.now();
                if (!ok(pysim::send_pyobj(comm, object, 1, 0, opts))) {
                    std::printf("send failed!\n");
                    return;
                }
                // Wait for the collector's ack so the send-side clock covers
                // the full delivery.
                char ackbuf = 0;
                (void)comm.recv_bytes(&ackbuf, 1, 1, 1);
                std::printf("%-16s delivered in %8.1f us (virtual)\n",
                            to_cstring(method), comm.now() - before);
            } else {
                PyValue received;
                if (!ok(pysim::recv_pyobj(comm, &received, 0, 0, opts))) {
                    std::printf("recv failed!\n");
                    return;
                }
                const char ack = received == object ? '+' : '!';
                (void)comm.send_bytes(&ack, 1, 0, 1);
                if (received != object) std::printf("MISMATCH under %s\n",
                                                    to_cstring(method));
            }
        });
    }
    std::printf("(oob-cdt uses one header message plus ONE custom-datatype "
                "message carrying every array as a memory region)\n");
    return 0;
}
