// Collective-op tracing demo: a 12-rank, 3-ranks-per-node two-level world
// runs a mix of hierarchical and flat collectives so that
//
//   MPICD_TRACE=1 MPICD_TRACE_FILE=coll_trace.json ./coll_trace_demo
//
// produces one Chrome trace containing ALL ranks' coll.op_begin /
// coll.round / coll.step_send / coll.step_recv / coll.op_end instants
// plus every point-to-point span they spawned — the input
// tools/coll_analyze.py needs to rebuild op -> round -> message trees and
// the cross-rank critical path (docs/OBSERVABILITY.md).
//
// The mix covers every instrumentation site:
//   - ibarrier                 flat dissemination, nonblocking machinery
//   - ibcast_bytes             hierarchical binomial (root -> leaders ->
//                              members), exercising the uplink serializer
//   - iallreduce               hierarchical reduce+bcast over doubles
//   - allgatherv_bytes         blocking v-collective, leader aggregation
//                              with variable per-rank extents
#include <atomic>
#include <cstdio>
#include <vector>

#include "base/metrics.hpp"
#include "base/trace.hpp"
#include "p2p/coll/nonblocking.hpp"
#include "p2p/coll/vcoll.hpp"
#include "p2p/runner.hpp"

namespace {

constexpr int kRanks = 12;
constexpr int kRanksPerNode = 3;
constexpr std::size_t kBcastBytes = 32 * 1024;
constexpr std::size_t kReduceDoubles = 2048;

} // namespace

int main() {
    using namespace mpicd;
    using namespace mpicd::p2p;

    netsim::WireParams params;
    params.ranks_per_node = kRanksPerNode;

    std::atomic<int> failures{0};
    run_world(kRanks, [&](Communicator& comm) {
        const int r = comm.rank();
        const int n = comm.size();

        // Round 0: everyone synchronizes (flat dissemination).
        auto barrier_rq = coll::ibarrier(comm);
        if (barrier_rq.wait() != Status::success) ++failures;

        // Round 1: hierarchical broadcast of a 32 KiB block from rank 0.
        std::vector<std::byte> blob(kBcastBytes);
        if (r == 0) {
            for (std::size_t i = 0; i < blob.size(); ++i)
                blob[i] = static_cast<std::byte>(i * 131u);
        }
        auto bcast_rq =
            coll::ibcast_bytes(comm, blob.data(), Count(blob.size()), 0);
        if (bcast_rq.wait() != Status::success) ++failures;
        for (std::size_t i = 0; i < blob.size(); ++i) {
            if (blob[i] != static_cast<std::byte>(i * 131u)) {
                ++failures;
                break;
            }
        }

        // Round 2: hierarchical allreduce (sum) over doubles.
        std::vector<double> acc(kReduceDoubles);
        for (std::size_t i = 0; i < acc.size(); ++i)
            acc[i] = static_cast<double>(r) + 0.5;
        auto ar_rq = coll::iallreduce(comm, acc.data(), Count(acc.size()),
                                      ReduceOp::sum);
        if (ar_rq.wait() != Status::success) ++failures;
        const double expect = (n * (n - 1)) / 2.0 + 0.5 * n;
        if (acc[0] != expect || acc.back() != expect) ++failures;

        // Round 3: allgatherv with ragged per-rank extents (rank i
        // contributes (i+1)*64 bytes) — the leader-aggregation path with
        // superblock exchange between node leaders.
        std::vector<Count> counts(static_cast<std::size_t>(n));
        std::vector<Count> displs(static_cast<std::size_t>(n));
        Count total = 0;
        for (int i = 0; i < n; ++i) {
            counts[static_cast<std::size_t>(i)] = Count((i + 1) * 64);
            displs[static_cast<std::size_t>(i)] = total;
            total += counts[static_cast<std::size_t>(i)];
        }
        std::vector<std::byte> mine(static_cast<std::size_t>(
            counts[static_cast<std::size_t>(r)]));
        for (std::size_t i = 0; i < mine.size(); ++i)
            mine[i] = static_cast<std::byte>(r * 17 + int(i));
        std::vector<std::byte> all(static_cast<std::size_t>(total));
        if (coll::allgatherv_bytes(comm, mine.data(), Count(mine.size()),
                                   all.data(), counts, displs) !=
            Status::success)
            ++failures;
        for (int i = 0; i < n; ++i) {
            const auto off = static_cast<std::size_t>(
                displs[static_cast<std::size_t>(i)]);
            const auto len = static_cast<std::size_t>(
                counts[static_cast<std::size_t>(i)]);
            for (std::size_t j = 0; j < len; ++j) {
                if (all[off + j] != static_cast<std::byte>(i * 17 + int(j))) {
                    ++failures;
                    j = len;
                    i = n - 1;
                }
            }
        }
    }, params);

    const auto ts = trace::stats();
    std::printf("coll_trace_demo: ranks=%d failures=%d trace: enabled=%d "
                "recorded=%llu dropped=%llu\n",
                kRanks, failures.load(), trace::enabled() ? 1 : 0,
                static_cast<unsigned long long>(ts.recorded),
                static_cast<unsigned long long>(ts.dropped));

    std::printf("\n--- metrics snapshot ---\n");
    metrics().write_json(stdout, 0);
    std::printf("\n");
    return failures.load() == 0 ? 0 : 1;
}
