// Trace/metrics demo: drives every instrumented layer of the stack in one
// short run so `MPICD_TRACE=1 MPICD_TRACE_FILE=trace.json ./trace_demo`
// produces a Chrome/Perfetto timeline with the full event menagerie:
//
//   - an eager send                      -> ucx.eager_send
//   - a large derived-datatype message   -> ucx.rndv_rts/rndv_cts/frag_send,
//     over a lossy link (one scheduled      ucx.retransmit + ucx.ack_*,
//     fragment drop)                        net.tx/fault_drop
//   - a custom-serialized particle list  -> engine.sg_lower_send,
//                                           engine.custom_pack_frag,
//                                           engine.regions, dt.pack
//
// With tracing off it is still a useful smoke run: it prints the metrics
// snapshot (worker / fault / pack / trace groups) that every bench embeds.
// See docs/OBSERVABILITY.md.
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "base/metrics.hpp"
#include "base/trace.hpp"
#include "core/builtin_serialize.hpp"
#include "dt/datatype.hpp"
#include "p2p/communicator.hpp"
#include "p2p/universe.hpp"

namespace {

using namespace mpicd;

struct Particle {
    double pos[3];
    double vel[3];
    std::int32_t id;
    std::int32_t kind;
};
static_assert(std::is_trivially_copyable_v<Particle>);

constexpr int kTagEager = 1;
constexpr int kTagColumn = 2;
constexpr int kTagParticles = 3;
constexpr std::size_t kDoubles = 4096;
constexpr std::size_t kParticles = 2000;

} // namespace

int main() {
    using namespace mpicd;

    // Small eager threshold and fragment size so a medium message becomes a
    // multi-fragment pipelined rendezvous; a short RTO so the scheduled drop
    // recovers quickly in virtual time.
    netsim::WireParams params;
    params.eager_threshold = 256;
    params.rndv_frag_size = 4096;
    params.rto_us = 20.0;
    params.max_retries = 6;

    // A strided column type: every other double, the paper's canonical
    // derived-datatype example.
    auto column = dt::Datatype::vector(kDoubles / 2, 1, 2, dt::type_double());
    if (!ok(column->commit())) {
        std::fprintf(stderr, "trace_demo: datatype commit failed\n");
        return 1;
    }

    const auto& particles_type = core::custom_datatype_of<std::vector<Particle>>();

    // Scoped so worker/fabric teardown folds their counters into the
    // metrics registry before the snapshot below is printed.
    {
    p2p::Universe uni(2, params, netsim::FaultConfig{});

    // Drop the 2nd data fragment rank 0 sends to rank 1: the reliable
    // delivery layer detects the gap and retransmits (ucx.retransmit,
    // net.fault_drop in the trace; worker.retransmits in the metrics).
    netsim::ScheduledFault drop;
    drop.src = 0;
    drop.dst = 1;
    drop.action = netsim::FaultAction::drop;
    drop.kind_filter = ucx::wire::kFrag;
    drop.nth = 2;
    uni.fabric().faults().schedule(drop);

    std::thread receiver([&] {
        auto& comm = uni.comm(1);

        char hello[64] = {};
        (void)comm.recv_bytes(hello, sizeof(hello), 0, kTagEager);

        std::vector<double> column_in(kDoubles, 0.0);
        auto rc = comm.irecv(column_in.data(), 1, column, 0, kTagColumn);
        const auto cst = rc.wait();

        // The custom receive queries its expected size from the object, so
        // the list is pre-sized (the demo's count is static; a real app
        // announces it in-band first, as particle_exchange does).
        std::vector<Particle> particles_in(kParticles);
        auto rp = comm.irecv_custom(&particles_in, 1, particles_type, 0,
                                    kTagParticles);
        const auto pst = rp.wait();

        std::printf("[rank 1] column recv: %lld bytes, vtime %.2f us (%s)\n",
                    cst.bytes, cst.vtime, to_cstring(cst.status));
        std::printf("[rank 1] particles recv: %zu particles, vtime %.2f us (%s)\n",
                    particles_in.size(), pst.vtime, to_cstring(pst.status));
    });

    {
        auto& comm = uni.comm(0);

        const char hello[64] = "hello from the trace demo";
        (void)comm.send_bytes(hello, sizeof(hello), 1, kTagEager);

        std::vector<double> column_out(kDoubles);
        for (std::size_t i = 0; i < column_out.size(); ++i) {
            column_out[i] = 0.25 * static_cast<double>(i);
        }
        auto sc = comm.isend(column_out.data(), 1, column, 1, kTagColumn);
        (void)sc.wait();

        std::vector<Particle> particles_out(kParticles);
        for (std::size_t i = 0; i < particles_out.size(); ++i) {
            particles_out[i].id = static_cast<std::int32_t>(i);
            particles_out[i].kind = static_cast<std::int32_t>(i % 4);
            for (int d = 0; d < 3; ++d) {
                particles_out[i].pos[d] = 0.001 * static_cast<double>(i) + d;
                particles_out[i].vel[d] = 0.1 * d;
            }
        }
        auto sp = comm.isend_custom(&particles_out, 1, particles_type, 1,
                                    kTagParticles);
        (void)sp.wait();
    }
    receiver.join();
    } // ~Universe: workers and fabric fold their stats into metrics()

    const auto ts = trace::stats();
    std::printf("\ntrace: enabled=%d recorded=%llu dropped=%llu threads=%zu\n",
                trace::enabled() ? 1 : 0,
                static_cast<unsigned long long>(ts.recorded),
                static_cast<unsigned long long>(ts.dropped),
                static_cast<std::size_t>(ts.threads));
    if (trace::enabled()) {
        std::printf("\n--- timeline (first 40 events) ---\n");
        trace::write_text(stdout, 40);
    }

    std::printf("\n--- metrics snapshot ---\n");
    metrics().write_json(stdout, 0);
    std::printf("\n");
    return 0;
}
